//! Parser for the paper's extended `MATCH_RECOGNIZE` notation (Fig. 9).
//!
//! The paper writes queries in the SQL `MATCH_RECOGNIZE` style [Zemke et al.]
//! extended with two constructs from the Tesla language: `WITHIN … FROM …`
//! (window size and start condition) and `CONSUME …` (consumption policy).
//! This module parses that notation into a [`Query`]:
//!
//! ```text
//! PATTERN (MLE RE1 RE2)
//! DEFINE
//!   MLE AS (MLE.closePrice > MLE.openPrice AND MLE.symbol == SYM('AAPL')),
//!   RE1 AS (RE1.closePrice > RE1.openPrice),
//!   RE2 AS (RE2.closePrice > RE2.openPrice)
//! WITHIN 8000 EVENTS FROM MLE
//! CONSUME (MLE RE1 RE2)
//! ```
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query    := PATTERN '(' elem+ ')' [DEFINE def (',' def)*]
//!             WITHIN num unit FROM from [SELECT sel] [CONSUME cons]
//! elem     := '!' NAME | NAME ['+'] | SET '(' NAME+ ')'
//! def      := NAME AS expr
//! unit     := EVENTS | MS | SEC | MIN
//! from     := EVERY num EVENTS | NAME
//! sel      := ONCE | EACH
//! cons     := ALL | NONE | '(' NAME* ')'
//! expr     := or; or := and (OR and)*; and := not (AND not)*
//! not      := [NOT] cmp
//! cmp      := add [(< | <= | > | >= | == | !=) add]
//! add      := mul (('+'|'-') mul)*; mul := prim (('*'|'/') prim)*
//! prim     := num | TRUE | FALSE | 'string' | SYM '(' 'name' ')'
//!           | TYPE '(' 'name' ')' | NAME '.' IDENT | '(' expr ')'
//! ```
//!
//! Attribute references `X.attr` resolve to the *current* event inside `X`'s
//! own definition and to `X`'s binding elsewhere; `TYPE('T')` tests the
//! current event's type; `SYM('AAPL')` interns a symbol literal.

use std::fmt;

use spectre_events::{Schema, Value};

use crate::expr::{ElemRef, Expr};
use crate::pattern::{ElemId, Pattern, PatternBuilder};
use crate::policy::{ConsumptionPolicy, SelectionPolicy};
use crate::query::Query;
use crate::window::{WindowClose, WindowOpen, WindowSpec};

/// Error produced by [`parse_query`], with a byte offset into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset of the offending token.
    pub pos: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a query in the extended `MATCH_RECOGNIZE` notation.
///
/// Attribute names, event types and symbol literals are interned into
/// `schema`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, unknown element references or
/// semantically invalid combinations (which wrap the corresponding
/// [`QueryError`](crate::query::QueryError) / pattern errors).
///
/// # Example
///
/// ```
/// use spectre_events::Schema;
/// use spectre_query::parse_query;
///
/// let mut schema = Schema::new();
/// let q = parse_query(
///     "PATTERN (A B)
///      DEFINE A AS (A.x < 0), B AS (B.x > A.x)
///      WITHIN 100 EVENTS FROM EVERY 10 EVENTS
///      CONSUME ALL",
///     &mut schema,
/// )?;
/// assert_eq!(q.pattern().step_count(), 2);
/// # Ok::<(), spectre_query::ParseError>(())
/// ```
pub fn parse_query(src: &str, schema: &mut Schema) -> Result<Query, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        schema,
    };
    p.query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, start));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, start));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, start));
                i += 1;
            }
            '.' => {
                toks.push((Tok::Dot, start));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, start));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, start));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, start));
                i += 1;
            }
            '/' => {
                toks.push((Tok::Slash, start));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Le, start));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, start));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ge, start));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, start));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::EqEq, start));
                    i += 2;
                } else {
                    return Err(ParseError {
                        msg: "expected `==`".into(),
                        pos: start,
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ne, start));
                    i += 2;
                } else {
                    toks.push((Tok::Bang, start));
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let s_start = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i == bytes.len() {
                    return Err(ParseError {
                        msg: "unterminated string literal".into(),
                        pos: start,
                    });
                }
                toks.push((Tok::Str(src[s_start..i].to_owned()), start));
                i += 1;
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit() || bytes[j] == b'.' || bytes[j] == b'_')
                {
                    // Don't swallow a `.` that is not followed by a digit
                    // (e.g. ranges); attribute access never follows numbers
                    // in this grammar, so a simple rule suffices.
                    if bytes[j] == b'.' && !bytes.get(j + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    j += 1;
                }
                let text: String = src[i..j].chars().filter(|c| *c != '_').collect();
                let num = text.parse::<f64>().map_err(|_| ParseError {
                    msg: format!("invalid number `{text}`"),
                    pos: start,
                })?;
                toks.push((Tok::Num(num), start));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                toks.push((Tok::Ident(src[i..j].to_owned()), start));
                i = j;
            }
            other => {
                return Err(ParseError {
                    msg: format!("unexpected character `{other}`"),
                    pos: start,
                });
            }
        }
    }
    Ok(toks)
}

#[derive(Debug, Clone)]
enum RawElem {
    One(String),
    Plus(String),
    Neg(String),
    Set(Vec<String>),
}

struct Parser<'s> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    schema: &'s mut Schema,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        let pos = self
            .toks
            .get(self.pos)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| self.toks.last().map(|(_, p)| *p + 1).unwrap_or(0));
        ParseError {
            msg: msg.into(),
            pos,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {tok}, found {t}"))),
            None => Err(self.err(format!("expected {tok}, found end of input"))),
        }
    }

    /// Peeks whether the next token is the given keyword (case-insensitive).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.peek_kw(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.peek() {
            Some(Tok::Num(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(n)
            }
            _ => Err(self.err("expected number")),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.eat_kw("PATTERN")?;
        self.eat(&Tok::LParen)?;
        let mut elems = Vec::new();
        while !matches!(self.peek(), Some(Tok::RParen)) {
            elems.push(self.elem()?);
        }
        self.eat(&Tok::RParen)?;
        if elems.is_empty() {
            return Err(self.err("pattern must contain at least one element"));
        }

        // Binding-element name table, in PatternBuilder allocation order.
        let mut binding_names: Vec<String> = Vec::new();
        for e in &elems {
            match e {
                RawElem::One(n) | RawElem::Plus(n) => binding_names.push(n.clone()),
                RawElem::Set(ns) => binding_names.extend(ns.iter().cloned()),
                RawElem::Neg(_) => {}
            }
        }
        let guard_names: Vec<String> = elems
            .iter()
            .filter_map(|e| match e {
                RawElem::Neg(n) => Some(n.clone()),
                _ => None,
            })
            .collect();

        // DEFINE clause.
        let mut defs: Vec<(String, Expr)> = Vec::new();
        if self.peek_kw("DEFINE") {
            self.pos += 1;
            loop {
                let name = self.ident()?;
                if !binding_names.contains(&name) && !guard_names.contains(&name) {
                    return Err(self.err(format!("DEFINE for unknown element `{name}`")));
                }
                self.eat_kw("AS")?;
                let expr = self.expr(&name, &binding_names)?;
                defs.push((name, expr));
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let def_of = |name: &str| -> Expr {
            defs.iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, e)| e.clone())
                .unwrap_or_else(Expr::truth)
        };

        // WITHIN clause.
        self.eat_kw("WITHIN")?;
        let scope_num = self.number()?;
        let unit = self.ident()?;
        let close = match unit.to_ascii_uppercase().as_str() {
            "EVENTS" | "EVENT" => WindowClose::Count(scope_num as u64),
            "MS" => WindowClose::Time(scope_num as u64),
            "SEC" | "SECONDS" => WindowClose::Time((scope_num * 1_000.0) as u64),
            "MIN" | "MINUTES" => WindowClose::Time((scope_num * 60_000.0) as u64),
            other => return Err(self.err(format!("unknown scope unit `{other}`"))),
        };
        self.eat_kw("FROM")?;
        let open = if self.peek_kw("EVERY") {
            self.pos += 1;
            let s = self.number()?;
            self.eat_kw("EVENTS")?;
            WindowOpen::EverySlide(s as u64)
        } else {
            let name = self.ident()?;
            if !binding_names.contains(&name) {
                return Err(self.err(format!("FROM references unknown element `{name}`")));
            }
            let pred = def_of(&name);
            let mut refs = Vec::new();
            pred.referenced_elems(&mut refs);
            if !refs.is_empty() {
                return Err(self.err(format!(
                    "window-start element `{name}` must not reference other elements"
                )));
            }
            WindowOpen::OnMatch {
                event_type: None,
                pred,
            }
        };
        let window = WindowSpec::new(open, close).map_err(|e| self.err(e.to_string()))?;

        // SELECT clause (extension; default ONCE).
        let mut selection = SelectionPolicy::Once;
        if self.peek_kw("SELECT") {
            self.pos += 1;
            let kw = self.ident()?;
            selection = match kw.to_ascii_uppercase().as_str() {
                "ONCE" => SelectionPolicy::Once,
                "EACH" => SelectionPolicy::EachLast,
                other => return Err(self.err(format!("unknown selection policy `{other}`"))),
            };
        }

        // CONSUME clause.
        let mut consumption = ConsumptionPolicy::None;
        if self.peek_kw("CONSUME") {
            self.pos += 1;
            if self.peek_kw("ALL") {
                self.pos += 1;
                consumption = ConsumptionPolicy::All;
            } else if self.peek_kw("NONE") {
                self.pos += 1;
                consumption = ConsumptionPolicy::None;
            } else {
                self.eat(&Tok::LParen)?;
                let mut names = Vec::new();
                while !matches!(self.peek(), Some(Tok::RParen)) {
                    let n = self.ident()?;
                    if !binding_names.contains(&n) {
                        return Err(self.err(format!("CONSUME names unknown element `{n}`")));
                    }
                    names.push(n);
                }
                self.eat(&Tok::RParen)?;
                consumption = ConsumptionPolicy::Selected(names);
            }
        }

        if let Some(t) = self.peek() {
            let t = t.clone();
            return Err(self.err(format!("unexpected trailing {t}")));
        }

        // Build the pattern.
        let mut builder: PatternBuilder = Pattern::builder();
        for e in &elems {
            builder = match e {
                RawElem::One(n) => builder.one(n, def_of(n)),
                RawElem::Plus(n) => builder.plus(n, def_of(n)),
                RawElem::Neg(n) => builder.forbid(n, def_of(n)),
                RawElem::Set(ns) => {
                    builder.set(ns.iter().map(|n| (n.clone(), def_of(n))).collect())
                }
            };
        }
        let pattern = builder.build().map_err(|e| ParseError {
            msg: e.to_string(),
            pos: 0,
        })?;

        Query::builder("parsed")
            .pattern(pattern)
            .window(window)
            .selection(selection)
            .consumption(consumption)
            .build()
            .map_err(|e| ParseError {
                msg: e.to_string(),
                pos: 0,
            })
    }

    fn elem(&mut self) -> Result<RawElem, ParseError> {
        if matches!(self.peek(), Some(Tok::Bang)) {
            self.pos += 1;
            let name = self.ident()?;
            return Ok(RawElem::Neg(name));
        }
        if self.peek_kw("SET") {
            self.pos += 1;
            self.eat(&Tok::LParen)?;
            let mut names = Vec::new();
            while !matches!(self.peek(), Some(Tok::RParen)) {
                names.push(self.ident()?);
            }
            self.eat(&Tok::RParen)?;
            return Ok(RawElem::Set(names));
        }
        let name = self.ident()?;
        if matches!(self.peek(), Some(Tok::Plus)) {
            self.pos += 1;
            Ok(RawElem::Plus(name))
        } else {
            Ok(RawElem::One(name))
        }
    }

    // ----- expression parsing (inside DEFINE for element `owner`) -----

    fn expr(&mut self, owner: &str, bindings: &[String]) -> Result<Expr, ParseError> {
        self.or_expr(owner, bindings)
    }

    fn or_expr(&mut self, owner: &str, bindings: &[String]) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr(owner, bindings)?;
        while self.peek_kw("OR") {
            self.pos += 1;
            let rhs = self.and_expr(owner, bindings)?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self, owner: &str, bindings: &[String]) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr(owner, bindings)?;
        while self.peek_kw("AND") {
            self.pos += 1;
            let rhs = self.not_expr(owner, bindings)?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self, owner: &str, bindings: &[String]) -> Result<Expr, ParseError> {
        if self.peek_kw("NOT") {
            self.pos += 1;
            return Ok(self.not_expr(owner, bindings)?.not());
        }
        self.cmp_expr(owner, bindings)
    }

    fn cmp_expr(&mut self, owner: &str, bindings: &[String]) -> Result<Expr, ParseError> {
        let lhs = self.add_expr(owner, bindings)?;
        let op = match self.peek() {
            Some(Tok::Lt) => Some(Expr::lt as fn(Expr, Expr) -> Expr),
            Some(Tok::Le) => Some(Expr::le as fn(Expr, Expr) -> Expr),
            Some(Tok::Gt) => Some(Expr::gt as fn(Expr, Expr) -> Expr),
            Some(Tok::Ge) => Some(Expr::ge as fn(Expr, Expr) -> Expr),
            Some(Tok::EqEq) => Some(Expr::eq_ as fn(Expr, Expr) -> Expr),
            Some(Tok::Ne) => Some(Expr::ne_ as fn(Expr, Expr) -> Expr),
            _ => None,
        };
        if let Some(f) = op {
            self.pos += 1;
            let rhs = self.add_expr(owner, bindings)?;
            Ok(f(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self, owner: &str, bindings: &[String]) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr(owner, bindings)?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    lhs = lhs.add(self.mul_expr(owner, bindings)?);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    lhs = lhs.sub(self.mul_expr(owner, bindings)?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn mul_expr(&mut self, owner: &str, bindings: &[String]) -> Result<Expr, ParseError> {
        let mut lhs = self.prim_expr(owner, bindings)?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    lhs = lhs.mul(self.prim_expr(owner, bindings)?);
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    lhs = lhs.div(self.prim_expr(owner, bindings)?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn prim_expr(&mut self, owner: &str, bindings: &[String]) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::value(n)),
            Some(Tok::Minus) => {
                let inner = self.prim_expr(owner, bindings)?;
                Ok(Expr::Unary(crate::expr::UnaryOp::Neg, Box::new(inner)))
            }
            Some(Tok::Str(s)) => Ok(Expr::value(s.as_str())),
            Some(Tok::LParen) => {
                let e = self.expr(owner, bindings)?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("TRUE") => Ok(Expr::value(true)),
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("FALSE") => Ok(Expr::value(false)),
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("SYM") => {
                self.eat(&Tok::LParen)?;
                let Some(Tok::Str(name)) = self.next() else {
                    return Err(self.err("SYM() expects a quoted symbol name"));
                };
                self.eat(&Tok::RParen)?;
                Ok(Expr::value(Value::Symbol(self.schema.symbol(&name))))
            }
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("TYPE") => {
                self.eat(&Tok::LParen)?;
                let Some(Tok::Str(name)) = self.next() else {
                    return Err(self.err("TYPE() expects a quoted type name"));
                };
                self.eat(&Tok::RParen)?;
                let ty = self.schema.event_type(&name);
                Ok(Expr::TypeIs(ElemRef::Current, ty))
            }
            Some(Tok::Ident(name)) => {
                self.eat(&Tok::Dot)?;
                let attr_name = self.ident()?;
                let attr = self.schema.attr(&attr_name);
                let elem_ref = if name == owner {
                    ElemRef::Current
                } else if let Some(i) = bindings.iter().position(|b| *b == name) {
                    ElemRef::Bound(ElemId::new(i as u16))
                } else {
                    return Err(self.err(format!("reference to unknown element `{name}`")));
                };
                Ok(Expr::attr(elem_ref, attr))
            }
            Some(t) => Err(ParseError {
                msg: format!("unexpected {t} in expression"),
                pos: self.toks[self.pos - 1].1,
            }),
            None => Err(self.err("unexpected end of input in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::StepKind;

    fn schema() -> Schema {
        Schema::new()
    }

    #[test]
    fn parses_q1_style_query() {
        let mut s = schema();
        let q = parse_query(
            "PATTERN (MLE RE1 RE2)
             DEFINE MLE AS (MLE.closePrice > MLE.openPrice AND MLE.leading == 1),
                    RE1 AS (RE1.closePrice > RE1.openPrice),
                    RE2 AS (RE2.closePrice > RE2.openPrice)
             WITHIN 8000 EVENTS FROM MLE
             CONSUME (MLE RE1 RE2)",
            &mut s,
        )
        .unwrap();
        assert_eq!(q.pattern().step_count(), 3);
        assert!(matches!(q.window().close(), WindowClose::Count(8000)));
        assert!(matches!(q.window().open(), WindowOpen::OnMatch { .. }));
        for i in 0..3 {
            assert!(q.consumable(ElemId::new(i)));
        }
    }

    #[test]
    fn parses_kleene_and_slide() {
        let mut s = schema();
        let q = parse_query(
            "PATTERN (A B+ C)
             DEFINE A AS (A.closePrice < 10),
                    B AS (B.closePrice >= 10 AND B.closePrice <= 20),
                    C AS (C.closePrice > 20)
             WITHIN 8000 EVENTS FROM EVERY 1000 EVENTS
             CONSUME ALL",
            &mut s,
        )
        .unwrap();
        assert_eq!(q.pattern().step_count(), 3);
        assert!(matches!(q.pattern().steps()[1].kind, StepKind::Plus(_)));
        assert!(matches!(q.window().open(), WindowOpen::EverySlide(1000)));
    }

    #[test]
    fn parses_set_pattern() {
        let mut s = schema();
        let q = parse_query(
            "PATTERN (A SET(X1 X2 X3))
             DEFINE A AS (A.symbol == SYM('LEAD')),
                    X1 AS (X1.symbol == SYM('S1')),
                    X2 AS (X2.symbol == SYM('S2')),
                    X3 AS (X3.symbol == SYM('S3'))
             WITHIN 1000 EVENTS FROM EVERY 100 EVENTS
             CONSUME ALL",
            &mut s,
        )
        .unwrap();
        assert_eq!(q.pattern().step_count(), 2);
        assert!(matches!(&q.pattern().steps()[1].kind, StepKind::Set(m) if m.len() == 3));
        assert_eq!(s.symbol_count(), 4);
    }

    #[test]
    fn parses_negation_and_time_window() {
        let mut s = schema();
        let q = parse_query(
            "PATTERN (A !C B)
             DEFINE A AS (A.x == 1), C AS (C.x == 9), B AS (B.x == 2)
             WITHIN 1 MIN FROM A
             SELECT EACH
             CONSUME (B)",
            &mut s,
        )
        .unwrap();
        assert_eq!(q.pattern().step_count(), 2);
        assert_eq!(q.pattern().steps()[1].forbid.len(), 1);
        assert!(matches!(q.window().close(), WindowClose::Time(60_000)));
        assert_eq!(q.selection(), SelectionPolicy::EachLast);
        assert_eq!(
            q.consumption(),
            &ConsumptionPolicy::Selected(vec!["B".into()])
        );
    }

    #[test]
    fn cross_element_reference_resolves_to_binding() {
        let mut s = schema();
        let q = parse_query(
            "PATTERN (A B)
             DEFINE A AS (A.x > 0), B AS (B.x > A.x * 2)
             WITHIN 10 EVENTS FROM EVERY 5 EVENTS",
            &mut s,
        )
        .unwrap();
        let StepKind::One(m) = &q.pattern().steps()[1].kind else {
            panic!()
        };
        let mut refs = Vec::new();
        m.pred.referenced_elems(&mut refs);
        assert_eq!(refs, vec![ElemId::new(0)]);
    }

    #[test]
    fn rejects_unknown_references() {
        let mut s = schema();
        let err = parse_query(
            "PATTERN (A) DEFINE A AS (Z.x > 0) WITHIN 10 EVENTS FROM A",
            &mut s,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown element `Z`"), "{}", err.msg);

        let err = parse_query(
            "PATTERN (A) DEFINE B AS (B.x > 0) WITHIN 10 EVENTS FROM A",
            &mut s,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown element `B`"), "{}", err.msg);

        let err = parse_query("PATTERN (A) WITHIN 10 EVENTS FROM Q", &mut s).unwrap_err();
        assert!(err.msg.contains("unknown element `Q`"), "{}", err.msg);

        let err =
            parse_query("PATTERN (A) WITHIN 10 EVENTS FROM A CONSUME (Z)", &mut s).unwrap_err();
        assert!(err.msg.contains("unknown element `Z`"), "{}", err.msg);
    }

    #[test]
    fn rejects_window_start_with_cross_references() {
        let mut s = schema();
        let err = parse_query(
            "PATTERN (A B) DEFINE A AS (A.x > 0), B AS (B.x > A.x)
             WITHIN 10 EVENTS FROM B",
            &mut s,
        )
        .unwrap_err();
        assert!(err.msg.contains("must not reference"), "{}", err.msg);
    }

    #[test]
    fn rejects_malformed_input() {
        let mut s = schema();
        assert!(parse_query("", &mut s).is_err());
        assert!(parse_query("PATTERN ()", &mut s).is_err());
        assert!(parse_query("PATTERN (A) WITHIN x EVENTS FROM A", &mut s).is_err());
        assert!(parse_query("PATTERN (A) WITHIN 10 FURLONGS FROM A", &mut s).is_err());
        assert!(parse_query(
            "PATTERN (A) WITHIN 10 EVENTS FROM A trailing garbage",
            &mut s
        )
        .is_err());
        assert!(parse_query("PATTERN (A DEFINE", &mut s).is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let mut s = schema();
        let q = parse_query(
            "PATTERN (A) DEFINE A AS (A.x + 2 * 3 == 7) WITHIN 10 EVENTS FROM EVERY 1 EVENTS",
            &mut s,
        )
        .unwrap();
        let StepKind::One(m) = &q.pattern().steps()[0].kind else {
            panic!()
        };
        // ((A.x + (2 * 3)) == 7)
        assert_eq!(m.pred.to_string(), "((self.a0 + (2 * 3)) == 7)");
    }

    #[test]
    fn unterminated_string_errors() {
        let mut s = schema();
        let err = parse_query("PATTERN (A) DEFINE A AS (A.s == 'oops", &mut s).unwrap_err();
        assert!(err.msg.contains("unterminated"));
    }
}
