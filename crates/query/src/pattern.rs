//! Pattern structure: steps, element matchers and the pattern builder.

use std::fmt;

use serde::{Deserialize, Serialize};
use spectre_events::EventType;

use crate::expr::Expr;

/// Dense id of a *binding element* of a pattern: something an event can be
/// bound to (a sequence step, a Kleene step or a set member).
///
/// Negation guards do not bind events and therefore have no `ElemId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElemId(u16);

impl ElemId {
    /// Creates an id from a raw index.
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }

    /// Raw index, usable for dense tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ElemId({})", self.0)
    }
}

/// Dense id of a pattern step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StepId(u16);

impl StepId {
    /// Creates an id from a raw index.
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }

    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single-event matcher: name, optional event-type filter and predicate.
///
/// The predicate is evaluated with the candidate event as
/// [`ElemRef::Current`](crate::ElemRef::Current) and earlier bindings
/// available via [`ElemRef::Bound`](crate::ElemRef::Bound).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElemMatcher {
    /// Element name as written in the query (e.g. `"RE1"`).
    pub name: String,
    /// Binding slot; `None` for negation guards, which never bind.
    pub elem: Option<ElemId>,
    /// Optional event-type filter applied before the predicate.
    pub event_type: Option<EventType>,
    /// Predicate over the candidate event (and earlier bindings).
    pub pred: Expr,
}

/// The kind of a pattern step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum StepKind {
    /// Exactly one event (`A`).
    One(ElemMatcher),
    /// One or more events (`B+`). SPECTRE uses deterministic
    /// *skip-till-next-match* semantics: once entered, an event matching the
    /// *next* step advances the match, otherwise an event matching this step
    /// is absorbed.
    Plus(ElemMatcher),
    /// An unordered set (`SET(X1 … Xn)`): every member must match exactly one
    /// event, in any order (paper query Q3). At most 128 members.
    Set(Vec<ElemMatcher>),
}

impl StepKind {
    /// Minimum number of events this step still needs when fresh.
    pub fn min_events(&self) -> usize {
        match self {
            StepKind::One(_) | StepKind::Plus(_) => 1,
            StepKind::Set(members) => members.len(),
        }
    }
}

/// One step of a pattern, with the negation guards active while the match
/// waits at this step.
///
/// A guard firing abandons the partial match — the paper's example of a
/// sequence `A … B` with "no event of type C in between" attaches a guard
/// for `C` to the `B` step (§3.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Step {
    /// The step's id (== its position).
    pub id: StepId,
    /// What the step matches.
    pub kind: StepKind,
    /// Negation guards active while this step is pending.
    pub forbid: Vec<ElemMatcher>,
}

/// Error raised by [`PatternBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The pattern has no steps.
    Empty,
    /// Two binding elements share a name.
    DuplicateName(String),
    /// A `SET` step has no members.
    EmptySet,
    /// A `SET` step has more than 128 members.
    SetTooLarge(usize),
    /// `forbid` was called but no subsequent step was added to attach to.
    DanglingGuard(String),
    /// More than `u16::MAX` binding elements.
    TooManyElems,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Empty => write!(f, "pattern has no steps"),
            PatternError::DuplicateName(n) => write!(f, "duplicate element name `{n}`"),
            PatternError::EmptySet => write!(f, "SET step has no members"),
            PatternError::SetTooLarge(n) => write!(f, "SET step has {n} members, maximum is 128"),
            PatternError::DanglingGuard(n) => {
                write!(f, "negation guard `{n}` has no following step")
            }
            PatternError::TooManyElems => write!(f, "too many binding elements"),
        }
    }
}

impl std::error::Error for PatternError {}

/// An event pattern: an ordered list of [`Step`]s.
///
/// Patterns are immutable once built; engines share them behind an `Arc`.
///
/// # Example
///
/// ```
/// use spectre_events::Schema;
/// use spectre_query::{Expr, Pattern};
///
/// let mut schema = Schema::new();
/// let close = schema.attr("close");
/// // A (close < 10) followed by one-or-more B (close >= 10)
/// let pattern = Pattern::builder()
///     .one("A", Expr::current(close).lt(Expr::value(10.0)))
///     .plus("B", Expr::current(close).ge(Expr::value(10.0)))
///     .build()?;
/// assert_eq!(pattern.step_count(), 2);
/// assert_eq!(pattern.max_delta(), 2);
/// # Ok::<(), spectre_query::pattern::PatternError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pattern {
    steps: Vec<Step>,
    elem_names: Vec<String>,
}

impl Pattern {
    /// Starts building a pattern.
    pub fn builder() -> PatternBuilder {
        PatternBuilder::default()
    }

    /// The pattern's steps in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of binding elements (slots a [`PartialMatch`](crate::PartialMatch)
    /// allocates).
    pub fn elem_count(&self) -> usize {
        self.elem_names.len()
    }

    /// The minimum number of events a fresh match needs to complete — the
    /// initial completion distance δ of the paper's Markov model (§3.2.1).
    pub fn max_delta(&self) -> usize {
        self.steps.iter().map(|s| s.kind.min_events()).sum()
    }

    /// Name of a binding element.
    pub fn elem_name(&self, elem: ElemId) -> Option<&str> {
        self.elem_names.get(elem.index()).map(String::as_str)
    }

    /// Looks up a binding element by name.
    pub fn elem_by_name(&self, name: &str) -> Option<ElemId> {
        self.elem_names
            .iter()
            .position(|n| n == name)
            .map(|i| ElemId::new(i as u16))
    }

    /// The matcher(s) able to start a fresh match (step 0).
    pub fn first_step(&self) -> &Step {
        &self.steps[0]
    }
}

/// Builder for [`Pattern`]; see [`Pattern::builder`].
#[derive(Debug, Default)]
pub struct PatternBuilder {
    steps: Vec<Step>,
    elem_names: Vec<String>,
    pending_forbid: Vec<ElemMatcher>,
    error: Option<PatternError>,
}

impl PatternBuilder {
    fn alloc_elem(&mut self, name: &str) -> Option<ElemId> {
        if self.elem_names.iter().any(|n| n == name) {
            self.error
                .get_or_insert(PatternError::DuplicateName(name.to_owned()));
            return None;
        }
        if self.elem_names.len() > u16::MAX as usize {
            self.error.get_or_insert(PatternError::TooManyElems);
            return None;
        }
        let id = ElemId::new(self.elem_names.len() as u16);
        self.elem_names.push(name.to_owned());
        Some(id)
    }

    fn push_step(&mut self, kind: StepKind) {
        let id = StepId::new(self.steps.len() as u16);
        let forbid = std::mem::take(&mut self.pending_forbid);
        self.steps.push(Step { id, kind, forbid });
    }

    /// Adds a single-event step.
    pub fn one(mut self, name: &str, pred: Expr) -> Self {
        if let Some(elem) = self.alloc_elem(name) {
            self.push_step(StepKind::One(ElemMatcher {
                name: name.to_owned(),
                elem: Some(elem),
                event_type: None,
                pred,
            }));
        }
        self
    }

    /// Adds a single-event step with an event-type filter.
    pub fn one_typed(mut self, name: &str, event_type: EventType, pred: Expr) -> Self {
        if let Some(elem) = self.alloc_elem(name) {
            self.push_step(StepKind::One(ElemMatcher {
                name: name.to_owned(),
                elem: Some(elem),
                event_type: Some(event_type),
                pred,
            }));
        }
        self
    }

    /// Adds a Kleene-`+` step (one or more events).
    pub fn plus(mut self, name: &str, pred: Expr) -> Self {
        if let Some(elem) = self.alloc_elem(name) {
            self.push_step(StepKind::Plus(ElemMatcher {
                name: name.to_owned(),
                elem: Some(elem),
                event_type: None,
                pred,
            }));
        }
        self
    }

    /// Adds an unordered `SET` step; each `(name, pred)` member must match
    /// exactly one event.
    pub fn set(mut self, members: Vec<(String, Expr)>) -> Self {
        if members.is_empty() {
            self.error.get_or_insert(PatternError::EmptySet);
            return self;
        }
        if members.len() > 128 {
            self.error
                .get_or_insert(PatternError::SetTooLarge(members.len()));
            return self;
        }
        let mut ms = Vec::with_capacity(members.len());
        for (name, pred) in members {
            match self.alloc_elem(&name) {
                Some(elem) => ms.push(ElemMatcher {
                    name,
                    elem: Some(elem),
                    event_type: None,
                    pred,
                }),
                None => return self,
            }
        }
        self.push_step(StepKind::Set(ms));
        self
    }

    /// Adds a negation guard active while the *next added* step is pending:
    /// an event matching `pred` abandons the partial match.
    pub fn forbid(mut self, name: &str, pred: Expr) -> Self {
        self.pending_forbid.push(ElemMatcher {
            name: name.to_owned(),
            elem: None,
            event_type: None,
            pred,
        });
        self
    }

    /// Finishes the pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`PatternError`] for empty patterns, duplicate names, empty
    /// or oversized sets, or a trailing [`forbid`](Self::forbid) with no
    /// following step.
    pub fn build(self) -> Result<Pattern, PatternError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if let Some(guard) = self.pending_forbid.first() {
            return Err(PatternError::DanglingGuard(guard.name.clone()));
        }
        if self.steps.is_empty() {
            return Err(PatternError::Empty);
        }
        Ok(Pattern {
            steps: self.steps,
            elem_names: self.elem_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn t() -> Expr {
        Expr::truth()
    }

    #[test]
    fn builds_sequence_pattern() {
        let p = Pattern::builder()
            .one("A", t())
            .plus("B", t())
            .one("C", t())
            .build()
            .unwrap();
        assert_eq!(p.step_count(), 3);
        assert_eq!(p.elem_count(), 3);
        assert_eq!(p.max_delta(), 3);
        assert_eq!(p.elem_by_name("B"), Some(ElemId::new(1)));
        assert_eq!(p.elem_name(ElemId::new(2)), Some("C"));
    }

    #[test]
    fn set_counts_members_in_delta() {
        let p = Pattern::builder()
            .one("A", t())
            .set(vec![
                ("X1".into(), t()),
                ("X2".into(), t()),
                ("X3".into(), t()),
            ])
            .build()
            .unwrap();
        assert_eq!(p.step_count(), 2);
        assert_eq!(p.elem_count(), 4);
        assert_eq!(p.max_delta(), 4);
    }

    #[test]
    fn rejects_empty_pattern() {
        assert_eq!(Pattern::builder().build().unwrap_err(), PatternError::Empty);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Pattern::builder()
            .one("A", t())
            .one("A", t())
            .build()
            .unwrap_err();
        assert_eq!(err, PatternError::DuplicateName("A".into()));
    }

    #[test]
    fn rejects_duplicate_name_inside_set() {
        let err = Pattern::builder()
            .one("A", t())
            .set(vec![("A".into(), t())])
            .build()
            .unwrap_err();
        assert_eq!(err, PatternError::DuplicateName("A".into()));
    }

    #[test]
    fn rejects_empty_and_oversized_sets() {
        assert_eq!(
            Pattern::builder().set(vec![]).build().unwrap_err(),
            PatternError::EmptySet
        );
        let members: Vec<_> = (0..129).map(|i| (format!("X{i}"), t())).collect();
        assert_eq!(
            Pattern::builder().set(members).build().unwrap_err(),
            PatternError::SetTooLarge(129)
        );
    }

    #[test]
    fn rejects_dangling_guard() {
        let err = Pattern::builder()
            .one("A", t())
            .forbid("C", t())
            .build()
            .unwrap_err();
        assert_eq!(err, PatternError::DanglingGuard("C".into()));
    }

    #[test]
    fn guard_attaches_to_next_step() {
        let p = Pattern::builder()
            .one("A", t())
            .forbid("C", t())
            .one("B", t())
            .build()
            .unwrap();
        assert!(p.steps()[0].forbid.is_empty());
        assert_eq!(p.steps()[1].forbid.len(), 1);
        assert_eq!(p.steps()[1].forbid[0].name, "C");
        // guards do not allocate binding slots
        assert_eq!(p.elem_count(), 2);
        assert_eq!(p.elem_by_name("C"), None);
    }

    #[test]
    fn large_fixed_pattern() {
        // Q1-like: MLE followed by 2560 REs.
        let mut b = Pattern::builder().one("MLE", t());
        for i in 0..2560 {
            b = b.one(&format!("RE{i}"), t());
        }
        let p = b.build().unwrap();
        assert_eq!(p.step_count(), 2561);
        assert_eq!(p.max_delta(), 2561);
    }
}
