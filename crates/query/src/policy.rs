use serde::{Deserialize, Serialize};

/// Selection policy: how many complex events one partial match may produce
/// within a window (paper §2.1, §5).
///
/// Event specification languages like Snoop, Amit and Tesla differentiate a
/// rich space of selection policies; SPECTRE's runtime is agnostic to the
/// concrete policy (paper §5) and this crate implements the two shapes the
/// paper's queries use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Every partial match completes at most once; this is the "first"
    /// semantics used by Q1–Q3.
    #[default]
    Once,
    /// After completion the *last* pattern step is re-armed so each further
    /// matching event produces another complex event — the introduction's
    /// "first A, each B" policy of query QE (paper Fig. 1).
    ///
    /// Requires the pattern's last step to be a single-event step.
    EachLast,
}

/// Consumption policy: which constituents of a detected complex event are
/// *consumed*, i.e. excluded from further pattern detection in this and all
/// overlapping windows (paper §1, §2.1).
///
/// Consumption happens atomically when a match completes; partial matches
/// never consume (paper §2.1: "events are not consumed while they only build
/// a partial match").
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConsumptionPolicy {
    /// No event is consumed; windows stay independent (paper Fig. 1a).
    #[default]
    None,
    /// All constituent events are consumed (queries Q1–Q3).
    All,
    /// Only the events bound by the named pattern elements are consumed,
    /// e.g. "selected B" in paper Fig. 1b.
    Selected(Vec<String>),
}

impl ConsumptionPolicy {
    /// `true` if completions can never consume anything — such queries have
    /// no inter-window dependencies and SPECTRE degenerates to plain window
    /// parallelism.
    pub fn is_none(&self) -> bool {
        matches!(self, ConsumptionPolicy::None)
            || matches!(self, ConsumptionPolicy::Selected(v) if v.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(SelectionPolicy::default(), SelectionPolicy::Once);
        assert_eq!(ConsumptionPolicy::default(), ConsumptionPolicy::None);
    }

    #[test]
    fn is_none_detection() {
        assert!(ConsumptionPolicy::None.is_none());
        assert!(ConsumptionPolicy::Selected(vec![]).is_none());
        assert!(!ConsumptionPolicy::All.is_none());
        assert!(!ConsumptionPolicy::Selected(vec!["B".into()]).is_none());
    }
}
