//! Ready-made builders for the paper's evaluation queries (Fig. 9) and the
//! introduction's example query QE (Fig. 1).
//!
//! All queries work on a shared stock-quote vocabulary ([`StockVocab`]):
//! events of type `Quote` carrying `symbol`, `openPrice`, `closePrice` and a
//! `leading` flag (set for the 16 blue-chip leader symbols of Q1).

use spectre_events::{AttrKey, EventType, Schema, SymbolId, Value};

use crate::expr::Expr;
use crate::pattern::Pattern;
use crate::policy::{ConsumptionPolicy, SelectionPolicy};
use crate::query::Query;
use crate::window::WindowSpec;

/// Interned ids of the stock-quote vocabulary shared by the paper's queries
/// and the dataset generators.
#[derive(Debug, Clone, Copy)]
pub struct StockVocab {
    /// Event type of stock quotes.
    pub quote: EventType,
    /// Stock symbol attribute ([`Value::Symbol`]).
    pub symbol: AttrKey,
    /// Opening price of the quote interval.
    pub open_price: AttrKey,
    /// Closing price of the quote interval.
    pub close_price: AttrKey,
    /// `true` on quotes of leading (blue-chip) symbols.
    pub leading: AttrKey,
}

impl StockVocab {
    /// Interns the vocabulary into `schema` (idempotent).
    pub fn install(schema: &mut Schema) -> Self {
        StockVocab {
            quote: schema.event_type("Quote"),
            symbol: schema.attr("symbol"),
            open_price: schema.attr("openPrice"),
            close_price: schema.attr("closePrice"),
            leading: schema.attr("leading"),
        }
    }

    /// Predicate: the current quote is rising (`closePrice > openPrice`).
    pub fn rising(&self) -> Expr {
        Expr::current(self.close_price).gt(Expr::current(self.open_price))
    }

    /// Predicate: the current quote is falling (`closePrice < openPrice`).
    pub fn falling(&self) -> Expr {
        Expr::current(self.close_price).lt(Expr::current(self.open_price))
    }

    /// Predicate: the current quote belongs to a leading symbol.
    pub fn is_leading(&self) -> Expr {
        Expr::current(self.leading).eq_(Expr::value(true))
    }

    /// Predicate: the current quote's symbol equals `sym`.
    pub fn symbol_is(&self, sym: SymbolId) -> Expr {
        Expr::current(self.symbol).eq_(Expr::value(Value::Symbol(sym)))
    }
}

/// Trend direction for [`q1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Rising quotes (`closePrice > openPrice`), the variant listed in Fig. 9.
    #[default]
    Rising,
    /// Falling quotes (`closePrice < openPrice`).
    Falling,
}

/// Paper query **Q1**: the first `q` rising (or falling) quotes within a
/// window of `ws` events opened by a rising (falling) quote of a *leading*
/// symbol; all constituents are consumed.
///
/// The pattern has fixed length `q + 1` and every matching event advances
/// the completion state — the property the paper uses to sweep the
/// consumption-group completion probability in Fig. 10(a)/(d).
///
/// # Panics
///
/// Panics if `q == 0` or `ws == 0`.
pub fn q1(schema: &mut Schema, q: usize, ws: u64, direction: Direction) -> Query {
    assert!(q > 0, "Q1 needs at least one RE step");
    let vocab = StockVocab::install(schema);
    let trend = match direction {
        Direction::Rising => vocab.rising(),
        Direction::Falling => vocab.falling(),
    };
    let mle_pred = vocab.is_leading().and(trend.clone());
    let mut b = Pattern::builder().one("MLE", mle_pred.clone());
    for i in 1..=q {
        b = b.one(&format!("RE{i}"), trend.clone());
    }
    let pattern = b.build().expect("valid Q1 pattern");
    Query::builder("Q1")
        .pattern(pattern)
        .window(
            WindowSpec::on_match_count(Some(vocab.quote), mle_pred, ws).expect("valid Q1 window"),
        )
        .consumption(ConsumptionPolicy::All)
        .build()
        .expect("valid Q1 query")
}

/// Paper query **Q2** (from Balkesen & Tatbul, extended with window and
/// consumption policy): price oscillations of a symbol between `lower` and
/// `upper` limits, `A B+ C D+ E F+ G H+ I J+ K L+ M`, window of `ws` events
/// sliding every `s` events, all constituents consumed.
///
/// The Kleene-`+` steps give the pattern a *variable* length: matching
/// events may absorb without advancing completion (paper §4.1). The
/// `lower`/`upper` limits control the average pattern size and thereby the
/// completion probability (Fig. 10(b)/(e)).
pub fn q2(schema: &mut Schema, lower: f64, upper: f64, ws: u64, s: u64) -> Query {
    let vocab = StockVocab::install(schema);
    let below = Expr::current(vocab.close_price).lt(Expr::value(lower));
    let between = Expr::current(vocab.close_price)
        .gt(Expr::value(lower))
        .and(Expr::current(vocab.close_price).lt(Expr::value(upper)));
    let above = Expr::current(vocab.close_price).gt(Expr::value(upper));

    // A(<) B+(=) C(>) D+(=) E(<) F+(=) G(>) H+(=) I(<) J+(=) K(>) L+(=) M(<)
    let pattern = Pattern::builder()
        .one("A", below.clone())
        .plus("B", between.clone())
        .one("C", above.clone())
        .plus("D", between.clone())
        .one("E", below.clone())
        .plus("F", between.clone())
        .one("G", above.clone())
        .plus("H", between.clone())
        .one("I", below.clone())
        .plus("J", between.clone())
        .one("K", above)
        .plus("L", between)
        .one("M", below)
        .build()
        .expect("valid Q2 pattern");
    Query::builder("Q2")
        .pattern(pattern)
        .window(WindowSpec::count_sliding(ws, s).expect("valid Q2 window"))
        .consumption(ConsumptionPolicy::All)
        .build()
        .expect("valid Q2 query")
}

/// Paper query **Q3**: stock symbol `leader` followed by a *set* of `n`
/// specific symbols in any order, window of `ws` events sliding every `s`
/// events, all constituents consumed (used for the Markov-model evaluation,
/// Fig. 11).
///
/// # Panics
///
/// Panics if `members` is empty or larger than 128.
pub fn q3(schema: &mut Schema, leader: SymbolId, members: &[SymbolId], ws: u64, s: u64) -> Query {
    assert!(!members.is_empty(), "Q3 needs at least one set member");
    let vocab = StockVocab::install(schema);
    let set_members: Vec<(String, Expr)> = members
        .iter()
        .enumerate()
        .map(|(i, sym)| (format!("X{}", i + 1), vocab.symbol_is(*sym)))
        .collect();
    let pattern = Pattern::builder()
        .one("A", vocab.symbol_is(leader))
        .set(set_members)
        .build()
        .expect("valid Q3 pattern");
    Query::builder("Q3")
        .pattern(pattern)
        .window(WindowSpec::count_sliding(ws, s).expect("valid Q3 window"))
        .consumption(ConsumptionPolicy::All)
        .build()
        .expect("valid Q3 query")
}

/// The introduction's example query **QE** (paper §2.1, Fig. 1): correlate a
/// change of stock `B` with a change of stock `A` within a time scope,
/// selection policy "first A, each B", consumption policy "selected B".
///
/// Windows open on `A` quotes with a time scope of `scope_ms`; each `B`
/// quote in the window produces a complex event and is consumed.
pub fn qe(schema: &mut Schema, scope_ms: u64) -> Query {
    let vocab = StockVocab::install(schema);
    let sym_a = schema.symbol("A");
    let sym_b = schema.symbol("B");
    let a_pred = vocab.symbol_is(sym_a);
    let b_pred = vocab.symbol_is(sym_b);
    let pattern = Pattern::builder()
        .one("A", a_pred.clone())
        .one("B", b_pred)
        .build()
        .expect("valid QE pattern");
    Query::builder("QE")
        .pattern(pattern)
        .window(
            WindowSpec::on_match_time(Some(vocab.quote), a_pred, scope_ms)
                .expect("valid QE window"),
        )
        .selection(SelectionPolicy::EachLast)
        .consumption(ConsumptionPolicy::Selected(vec!["B".into()]))
        .build()
        .expect("valid QE query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::StepKind;
    use crate::window::{WindowClose, WindowOpen};

    #[test]
    fn q1_shape() {
        let mut s = Schema::new();
        let q = q1(&mut s, 40, 8000, Direction::Rising);
        assert_eq!(q.pattern().step_count(), 41);
        assert_eq!(q.pattern().max_delta(), 41);
        assert!(matches!(q.window().close(), WindowClose::Count(8000)));
        assert!(matches!(q.window().open(), WindowOpen::OnMatch { .. }));
        assert_eq!(q.consumption(), &ConsumptionPolicy::All);
    }

    #[test]
    fn q1_falling_variant_differs() {
        let mut s = Schema::new();
        let rising = q1(&mut s, 2, 100, Direction::Rising);
        let falling = q1(&mut s, 2, 100, Direction::Falling);
        let StepKind::One(mr) = &rising.pattern().steps()[1].kind else {
            panic!()
        };
        let StepKind::One(mf) = &falling.pattern().steps()[1].kind else {
            panic!()
        };
        assert_ne!(mr.pred, mf.pred);
    }

    #[test]
    fn q2_shape() {
        let mut s = Schema::new();
        let q = q2(&mut s, 10.0, 20.0, 8000, 1000);
        assert_eq!(q.pattern().step_count(), 13);
        // 7 One steps + 6 Plus steps → max_delta 13
        assert_eq!(q.pattern().max_delta(), 13);
        let plus_count = q
            .pattern()
            .steps()
            .iter()
            .filter(|st| matches!(st.kind, StepKind::Plus(_)))
            .count();
        assert_eq!(plus_count, 6);
    }

    #[test]
    fn q3_shape() {
        let mut s = Schema::new();
        let leader = s.symbol("LEAD");
        let members: Vec<_> = (0..5).map(|i| s.symbol(&format!("S{i}"))).collect();
        let q = q3(&mut s, leader, &members, 1000, 100);
        assert_eq!(q.pattern().step_count(), 2);
        assert_eq!(q.pattern().max_delta(), 6);
    }

    #[test]
    fn qe_shape() {
        let mut s = Schema::new();
        let q = qe(&mut s, 60_000);
        assert_eq!(q.pattern().step_count(), 2);
        assert_eq!(q.selection(), SelectionPolicy::EachLast);
        assert_eq!(
            q.consumption(),
            &ConsumptionPolicy::Selected(vec!["B".into()])
        );
        assert!(matches!(q.window().close(), WindowClose::Time(60_000)));
    }

    #[test]
    #[should_panic(expected = "at least one RE step")]
    fn q1_rejects_zero_q() {
        let mut s = Schema::new();
        let _ = q1(&mut s, 0, 100, Direction::Rising);
    }
}
