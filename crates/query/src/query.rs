use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::pattern::{Pattern, StepKind};
use crate::policy::{ConsumptionPolicy, SelectionPolicy};
use crate::window::WindowSpec;

/// A complete CEP query: pattern + window specification + selection and
/// consumption policies (paper §2.1, Fig. 9).
///
/// Queries are immutable and shared behind `Arc` by splitter and operator
/// instances.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spectre_events::Schema;
/// use spectre_query::{ConsumptionPolicy, Expr, Pattern, Query, WindowSpec};
///
/// let mut schema = Schema::new();
/// let x = schema.attr("x");
/// let pattern = Pattern::builder()
///     .one("A", Expr::current(x).lt(Expr::value(0.0)))
///     .one("B", Expr::current(x).gt(Expr::value(0.0)))
///     .build()?;
/// let query = Query::builder("demo")
///     .pattern(pattern)
///     .window(WindowSpec::count_sliding(100, 10)?)
///     .consumption(ConsumptionPolicy::All)
///     .build()?;
/// assert!(query.consumable(spectre_query::ElemId::new(0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    name: String,
    pattern: Arc<Pattern>,
    window: WindowSpec,
    selection: SelectionPolicy,
    consumption: ConsumptionPolicy,
    max_active: usize,
    consumable: Box<[bool]>,
}

/// Error raised by [`QueryBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// No pattern was supplied.
    MissingPattern,
    /// No window specification was supplied.
    MissingWindow,
    /// The consumption policy names an element the pattern does not bind.
    UnknownElement(String),
    /// `SelectionPolicy::EachLast` requires the last step to be a
    /// single-event step.
    EachLastNeedsOneLast,
    /// `max_active` of zero would disable detection entirely.
    ZeroMaxActive,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::MissingPattern => write!(f, "query has no pattern"),
            QueryError::MissingWindow => write!(f, "query has no window specification"),
            QueryError::UnknownElement(n) => {
                write!(f, "consumption policy names unknown element `{n}`")
            }
            QueryError::EachLastNeedsOneLast => {
                write!(f, "EachLast selection requires a single-event last step")
            }
            QueryError::ZeroMaxActive => write!(f, "max_active must be at least 1"),
        }
    }
}

impl std::error::Error for QueryError {}

impl Query {
    /// Starts building a query with the given name.
    pub fn builder(name: &str) -> QueryBuilder {
        QueryBuilder {
            name: name.to_owned(),
            pattern: None,
            window: None,
            selection: SelectionPolicy::default(),
            consumption: ConsumptionPolicy::default(),
            max_active: 1,
        }
    }

    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pattern.
    pub fn pattern(&self) -> &Arc<Pattern> {
        &self.pattern
    }

    /// The window specification.
    pub fn window(&self) -> &WindowSpec {
        &self.window
    }

    /// The selection policy.
    pub fn selection(&self) -> SelectionPolicy {
        self.selection
    }

    /// The consumption policy.
    pub fn consumption(&self) -> &ConsumptionPolicy {
        &self.consumption
    }

    /// Maximum number of concurrently tracked partial matches per window
    /// (the paper's evaluations use 1, §4.2).
    pub fn max_active(&self) -> usize {
        self.max_active
    }

    /// `true` if events bound by `elem` are consumed on completion.
    pub fn consumable(&self, elem: crate::pattern::ElemId) -> bool {
        self.consumable.get(elem.index()).copied().unwrap_or(false)
    }
}

/// Builder for [`Query`]; see [`Query::builder`].
#[derive(Debug)]
pub struct QueryBuilder {
    name: String,
    pattern: Option<Arc<Pattern>>,
    window: Option<WindowSpec>,
    selection: SelectionPolicy,
    consumption: ConsumptionPolicy,
    max_active: usize,
}

impl QueryBuilder {
    /// Sets the pattern.
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = Some(Arc::new(pattern));
        self
    }

    /// Sets an already shared pattern.
    pub fn pattern_arc(mut self, pattern: Arc<Pattern>) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Sets the window specification.
    pub fn window(mut self, window: WindowSpec) -> Self {
        self.window = Some(window);
        self
    }

    /// Sets the selection policy (default [`SelectionPolicy::Once`]).
    pub fn selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the consumption policy (default [`ConsumptionPolicy::None`]).
    pub fn consumption(mut self, consumption: ConsumptionPolicy) -> Self {
        self.consumption = consumption;
        self
    }

    /// Sets the maximum number of concurrent partial matches per window
    /// (default 1, the paper's evaluation setting).
    pub fn max_active(mut self, max_active: usize) -> Self {
        self.max_active = max_active;
        self
    }

    /// Finishes the query.
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] if pattern or window are missing, the
    /// consumption policy names unknown elements, or the selection policy is
    /// incompatible with the pattern shape.
    pub fn build(self) -> Result<Query, QueryError> {
        let pattern = self.pattern.ok_or(QueryError::MissingPattern)?;
        let window = self.window.ok_or(QueryError::MissingWindow)?;
        if self.max_active == 0 {
            return Err(QueryError::ZeroMaxActive);
        }
        if self.selection == SelectionPolicy::EachLast {
            let last = pattern.steps().last().expect("non-empty pattern");
            if !matches!(last.kind, StepKind::One(_)) {
                return Err(QueryError::EachLastNeedsOneLast);
            }
        }
        let mut consumable = vec![false; pattern.elem_count()].into_boxed_slice();
        match &self.consumption {
            ConsumptionPolicy::None => {}
            ConsumptionPolicy::All => consumable.iter_mut().for_each(|b| *b = true),
            ConsumptionPolicy::Selected(names) => {
                for name in names {
                    let elem = pattern
                        .elem_by_name(name)
                        .ok_or_else(|| QueryError::UnknownElement(name.clone()))?;
                    consumable[elem.index()] = true;
                }
            }
        }
        Ok(Query {
            name: self.name,
            pattern,
            window,
            selection: self.selection,
            consumption: self.consumption,
            max_active: self.max_active,
            consumable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::pattern::ElemId;

    fn pattern() -> Pattern {
        Pattern::builder()
            .one("A", Expr::truth())
            .plus("B", Expr::truth())
            .one("C", Expr::truth())
            .build()
            .unwrap()
    }

    fn window() -> WindowSpec {
        WindowSpec::count_sliding(10, 5).unwrap()
    }

    #[test]
    fn builds_with_selected_consumption() {
        let q = Query::builder("q")
            .pattern(pattern())
            .window(window())
            .consumption(ConsumptionPolicy::Selected(vec!["B".into()]))
            .build()
            .unwrap();
        assert!(!q.consumable(ElemId::new(0)));
        assert!(q.consumable(ElemId::new(1)));
        assert!(!q.consumable(ElemId::new(2)));
    }

    #[test]
    fn all_consumption_marks_everything() {
        let q = Query::builder("q")
            .pattern(pattern())
            .window(window())
            .consumption(ConsumptionPolicy::All)
            .build()
            .unwrap();
        for i in 0..3 {
            assert!(q.consumable(ElemId::new(i)));
        }
    }

    #[test]
    fn rejects_unknown_consumed_element() {
        let err = Query::builder("q")
            .pattern(pattern())
            .window(window())
            .consumption(ConsumptionPolicy::Selected(vec!["Z".into()]))
            .build()
            .unwrap_err();
        assert_eq!(err, QueryError::UnknownElement("Z".into()));
    }

    #[test]
    fn rejects_missing_parts() {
        assert_eq!(
            Query::builder("q").window(window()).build().unwrap_err(),
            QueryError::MissingPattern
        );
        assert_eq!(
            Query::builder("q").pattern(pattern()).build().unwrap_err(),
            QueryError::MissingWindow
        );
    }

    #[test]
    fn each_last_requires_one_last_step() {
        let trailing_plus = Pattern::builder()
            .one("A", Expr::truth())
            .plus("B", Expr::truth())
            .build()
            .unwrap();
        let err = Query::builder("q")
            .pattern(trailing_plus)
            .window(window())
            .selection(SelectionPolicy::EachLast)
            .build()
            .unwrap_err();
        assert_eq!(err, QueryError::EachLastNeedsOneLast);

        let ok = Query::builder("q")
            .pattern(pattern())
            .window(window())
            .selection(SelectionPolicy::EachLast)
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn rejects_zero_max_active() {
        let err = Query::builder("q")
            .pattern(pattern())
            .window(window())
            .max_active(0)
            .build()
            .unwrap_err();
        assert_eq!(err, QueryError::ZeroMaxActive);
    }
}
