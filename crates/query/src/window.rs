//! Window specifications and the stream-to-window assigner (splitter logic).

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};
use spectre_events::{Event, EventType, Seq, Timestamp};

use crate::expr::Expr;

/// When a new window opens (paper §2.2: windows based on time, count or
/// logical predicates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WindowOpen {
    /// A new window opens every `slide` events (`FROM EVERY s EVENTS`); the
    /// first window opens on the first event of the stream.
    EverySlide(u64),
    /// A new window opens on every event matching the predicate (`FROM MLE`),
    /// e.g. "a window with a scope of 1 minute is opened whenever an A event
    /// occurs" (paper §2.1).
    OnMatch {
        /// Optional event-type filter.
        event_type: Option<EventType>,
        /// Predicate over the candidate start event (self-references only).
        pred: Expr,
    },
}

/// When an open window closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowClose {
    /// The window spans `ws` consecutive events including its start event
    /// (`WITHIN ws EVENTS`).
    Count(u64),
    /// The window spans events with `ts < start_ts + duration`
    /// (`WITHIN 1 MIN`).
    Time(Timestamp),
}

/// A complete window specification: open condition plus scope.
///
/// Specs compare structurally (`PartialEq`): two queries whose specs are
/// equal produce identical window boundaries over the same stream, which
/// is what lets a multi-query engine share one assigner — and one stored
/// copy of each window — between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSpec {
    open: WindowOpen,
    close: WindowClose,
}

/// Error raised for degenerate window specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowSpecError {
    /// Slide of zero events.
    ZeroSlide,
    /// Scope of zero events / zero duration.
    ZeroScope,
}

impl fmt::Display for WindowSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSpecError::ZeroSlide => write!(f, "window slide must be positive"),
            WindowSpecError::ZeroScope => write!(f, "window scope must be positive"),
        }
    }
}

impl std::error::Error for WindowSpecError {}

impl WindowSpec {
    /// Creates a window specification.
    ///
    /// # Errors
    ///
    /// Returns [`WindowSpecError`] if the slide or scope is zero.
    pub fn new(open: WindowOpen, close: WindowClose) -> Result<Self, WindowSpecError> {
        if let WindowOpen::EverySlide(0) = open {
            return Err(WindowSpecError::ZeroSlide);
        }
        match close {
            WindowClose::Count(0) | WindowClose::Time(0) => return Err(WindowSpecError::ZeroScope),
            _ => {}
        }
        Ok(WindowSpec { open, close })
    }

    /// Count-based sliding window: scope `ws` events, slide `s` events.
    pub fn count_sliding(ws: u64, s: u64) -> Result<Self, WindowSpecError> {
        Self::new(WindowOpen::EverySlide(s), WindowClose::Count(ws))
    }

    /// Predicate-opened window with a count scope.
    pub fn on_match_count(
        event_type: Option<EventType>,
        pred: Expr,
        ws: u64,
    ) -> Result<Self, WindowSpecError> {
        Self::new(
            WindowOpen::OnMatch { event_type, pred },
            WindowClose::Count(ws),
        )
    }

    /// Predicate-opened window with a time scope.
    pub fn on_match_time(
        event_type: Option<EventType>,
        pred: Expr,
        duration: Timestamp,
    ) -> Result<Self, WindowSpecError> {
        Self::new(
            WindowOpen::OnMatch { event_type, pred },
            WindowClose::Time(duration),
        )
    }

    /// The open condition.
    pub fn open(&self) -> &WindowOpen {
        &self.open
    }

    /// The close condition.
    pub fn close(&self) -> WindowClose {
        self.close
    }
}

/// Boundaries of one window instance, as stored by the splitter in shared
/// memory ("`wi` from event X to event Y", paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowBounds {
    /// Monotonically increasing window id; also the total order of windows
    /// (paper §3.1: windows are ordered by their start events).
    pub id: u64,
    /// Sequence number of the start event.
    pub start_seq: Seq,
    /// Timestamp of the start event.
    pub start_ts: Timestamp,
    /// Position of the start event in the stream (0-based event counter).
    pub start_pos: u64,
}

/// Outcome of observing one event in the [`WindowAssigner`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AssignResult {
    /// Window opened by this event (the event belongs to it).
    pub opened: Option<WindowBounds>,
    /// Windows that closed *before* this event (the event is outside them).
    pub closed: Vec<WindowBounds>,
    /// Ids of all windows containing this event, oldest first.
    pub members: Vec<u64>,
}

/// Splits the totally ordered input stream into (possibly overlapping)
/// windows according to a [`WindowSpec`] — the splitter's window logic
/// (paper §2.2).
///
/// The assigner is deterministic and engine-independent: the sequential
/// reference engine, the T-REX-style baseline and SPECTRE's splitter all use
/// it, guaranteeing identical window boundaries.
///
/// # Example
///
/// ```
/// use spectre_events::{Event, Schema};
/// use spectre_query::{WindowSpec, window::WindowAssigner};
///
/// let mut schema = Schema::new();
/// let t = schema.event_type("E");
/// let spec = WindowSpec::count_sliding(3, 2)?;
/// let mut wa = WindowAssigner::new(spec);
/// let mk = |seq| Event::builder(t).seq(seq).ts(seq).build();
/// assert_eq!(wa.observe(&mk(0)).members, vec![0]);       // w0 opens
/// assert_eq!(wa.observe(&mk(1)).members, vec![0]);
/// assert_eq!(wa.observe(&mk(2)).members, vec![0, 1]);    // w1 opens
/// let r = wa.observe(&mk(3));
/// assert_eq!(r.closed.len(), 1);                          // w0 closed
/// assert_eq!(r.members, vec![1]);
/// # Ok::<(), spectre_query::window::WindowSpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WindowAssigner {
    spec: WindowSpec,
    pos: u64,
    next_id: u64,
    open: VecDeque<WindowBounds>,
}

struct SelfCtx<'a>(&'a Event);

impl crate::expr::EvalContext for SelfCtx<'_> {
    fn current(&self) -> &Event {
        self.0
    }
    fn bound(&self, _: crate::pattern::ElemId) -> Option<&Event> {
        None
    }
}

impl WindowAssigner {
    /// Creates an assigner for the given specification.
    pub fn new(spec: WindowSpec) -> Self {
        WindowAssigner {
            spec,
            pos: 0,
            next_id: 0,
            open: VecDeque::new(),
        }
    }

    /// The window specification.
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Number of events observed so far.
    pub fn events_observed(&self) -> u64 {
        self.pos
    }

    /// Number of windows opened so far — also the id the next window will
    /// get. A consumer subscribing mid-stream uses this as its id offset so
    /// its own window numbering starts at zero from the next boundary.
    pub fn windows_opened(&self) -> u64 {
        self.next_id
    }

    /// Currently open windows, oldest first.
    pub fn open_windows(&self) -> impl Iterator<Item = &WindowBounds> {
        self.open.iter()
    }

    /// Observes the next stream event: closes windows whose scope excludes
    /// it, possibly opens a new window starting at it, and reports the
    /// windows it belongs to.
    pub fn observe(&mut self, ev: &Event) -> AssignResult {
        let mut closed = Vec::new();
        let opened = self.ingest(ev, &mut closed);
        AssignResult {
            opened,
            closed,
            // Memberships: all still-open windows contain this event.
            members: self.open.iter().map(|w| w.id).collect(),
        }
    }

    /// Allocation-free variant of [`observe`](Self::observe) for the
    /// splitter's hot path: windows the event closes are appended to
    /// `closed` (a caller-owned, reusable buffer), the window the event
    /// opens — if any — is returned, and no per-event membership list is
    /// built (every still-open window contains the event by construction,
    /// so callers that mirror the open set need none).
    pub fn ingest(&mut self, ev: &Event, closed: &mut Vec<WindowBounds>) -> Option<WindowBounds> {
        let pos = self.pos;
        self.pos += 1;

        // 1. Close windows that do not include this event (oldest first;
        //    start positions and timestamps are non-decreasing, so the scan
        //    can stop at the first still-included window).
        while let Some(front) = self.open.front() {
            let excluded = match self.spec.close {
                WindowClose::Count(ws) => pos >= front.start_pos + ws,
                WindowClose::Time(d) => ev.ts() >= front.start_ts.saturating_add(d),
            };
            if excluded {
                closed.push(self.open.pop_front().expect("front exists"));
            } else {
                break;
            }
        }

        // 2. Maybe open a new window starting at this event.
        let opens = match &self.spec.open {
            WindowOpen::EverySlide(s) => pos.is_multiple_of(*s),
            WindowOpen::OnMatch { event_type, pred } => {
                let type_ok = event_type.is_none_or(|t| ev.event_type() == t);
                type_ok && pred.matches(&SelfCtx(ev))
            }
        };
        if opens {
            let bounds = WindowBounds {
                id: self.next_id,
                start_seq: ev.seq(),
                start_ts: ev.ts(),
                start_pos: pos,
            };
            self.next_id += 1;
            self.open.push_back(bounds);
            return Some(bounds);
        }
        None
    }

    /// Flushes the stream end: every still-open window closes.
    pub fn finish(&mut self) -> Vec<WindowBounds> {
        self.open.drain(..).collect()
    }
}

/// A window's bounds together with its (exclusive) end position in the
/// stream, known once the window has closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowRange {
    /// The window's boundaries.
    pub bounds: WindowBounds,
    /// Position (0-based event index) of the first event *outside* the
    /// window.
    pub end_pos: u64,
}

impl WindowRange {
    /// Number of events the window spans.
    pub fn len(&self) -> u64 {
        self.end_pos - self.bounds.start_pos
    }

    /// `true` for zero-length windows (cannot occur: a window always contains
    /// its start event).
    pub fn is_empty(&self) -> bool {
        self.end_pos == self.bounds.start_pos
    }

    /// `true` if this window overlaps `other`.
    pub fn overlaps(&self, other: &WindowRange) -> bool {
        self.bounds.start_pos < other.end_pos && other.bounds.start_pos < self.end_pos
    }
}

/// Computes all window ranges of a finite stream in window-id order — the
/// batch counterpart of [`WindowAssigner`], used by the reference engines.
pub fn compute_ranges(spec: &WindowSpec, events: &[Event]) -> Vec<WindowRange> {
    let mut wa = WindowAssigner::new(spec.clone());
    let mut ranges: Vec<WindowRange> = Vec::new();
    for (pos, ev) in events.iter().enumerate() {
        let r = wa.observe(ev);
        for closed in r.closed {
            ranges.push(WindowRange {
                bounds: closed,
                end_pos: pos as u64,
            });
        }
    }
    let end = events.len() as u64;
    for closed in wa.finish() {
        ranges.push(WindowRange {
            bounds: closed,
            end_pos: end,
        });
    }
    ranges.sort_by_key(|r| r.bounds.id);
    ranges
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use spectre_events::Schema;

    fn mk(seq: Seq) -> Event {
        Event::builder(EventType::new(0)).seq(seq).ts(seq).build()
    }

    #[test]
    fn ranges_for_count_sliding() {
        let spec = WindowSpec::count_sliding(4, 2).unwrap();
        let events: Vec<_> = (0..7).map(mk).collect();
        let ranges = compute_ranges(&spec, &events);
        assert_eq!(ranges.len(), 4);
        // w0: [0,4) w1: [2,6) w2: [4,7) (truncated by stream end) w3: [6,7)
        assert_eq!(ranges[0].bounds.start_pos, 0);
        assert_eq!(ranges[0].end_pos, 4);
        assert_eq!(ranges[1].bounds.start_pos, 2);
        assert_eq!(ranges[1].end_pos, 6);
        assert_eq!(ranges[2].bounds.start_pos, 4);
        assert_eq!(ranges[2].end_pos, 7);
        assert_eq!(ranges[3].bounds.start_pos, 6);
        assert_eq!(ranges[3].end_pos, 7);
        assert!(ranges[0].overlaps(&ranges[1]));
        assert!(!ranges[0].overlaps(&ranges[3]));
        assert_eq!(ranges[0].len(), 4);
        assert!(!ranges[0].is_empty());
    }

    #[test]
    fn predicate_windows_for_time_scope() {
        let mut schema = Schema::new();
        let x = schema.attr("x");
        let spec =
            WindowSpec::on_match_time(None, Expr::current(x).eq_(Expr::value(1.0)), 5).unwrap();
        let mkx = |seq: Seq, ts: Timestamp, x_val: f64| {
            Event::builder(EventType::new(0))
                .seq(seq)
                .ts(ts)
                .attr(x, x_val)
                .build()
        };
        let events = vec![
            mkx(0, 0, 1.0),
            mkx(1, 2, 0.0),
            mkx(2, 4, 1.0),
            mkx(3, 6, 0.0),
            mkx(4, 11, 0.0),
        ];
        let ranges = compute_ranges(&spec, &events);
        assert_eq!(ranges.len(), 2);
        // w0: ts [0,5) → positions [0,3); w1: ts [4,9) → positions [2,4)
        assert_eq!((ranges[0].bounds.start_pos, ranges[0].end_pos), (0, 3));
        assert_eq!((ranges[1].bounds.start_pos, ranges[1].end_pos), (2, 4));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectre_events::{AttrKey, Schema};

    fn mk(seq: Seq, ts: Timestamp, x: f64) -> Event {
        Event::builder(EventType::new(0))
            .seq(seq)
            .ts(ts)
            .attr(AttrKey::new(0), x)
            .build()
    }

    #[test]
    fn count_sliding_windows_overlap() {
        let spec = WindowSpec::count_sliding(4, 2).unwrap();
        let mut wa = WindowAssigner::new(spec);
        let mut memberships = Vec::new();
        for i in 0..8 {
            let r = wa.observe(&mk(i, i, 0.0));
            memberships.push(r.members);
        }
        assert_eq!(
            memberships,
            vec![
                vec![0],
                vec![0],
                vec![0, 1],
                vec![0, 1],
                vec![1, 2],
                vec![1, 2],
                vec![2, 3],
                vec![2, 3],
            ]
        );
        assert_eq!(wa.finish().len(), 2);
    }

    #[test]
    fn tumbling_windows_when_slide_equals_scope() {
        let spec = WindowSpec::count_sliding(3, 3).unwrap();
        let mut wa = WindowAssigner::new(spec);
        for i in 0..9 {
            let r = wa.observe(&mk(i, i, 0.0));
            assert_eq!(r.members.len(), 1);
            assert_eq!(r.members[0], i / 3);
        }
    }

    #[test]
    fn predicate_open_with_time_scope() {
        let mut schema = Schema::new();
        let _ = schema.event_type("E");
        let x = schema.attr("x");
        // windows open on x == 1.0 events, scope 10 time units
        let spec =
            WindowSpec::on_match_time(None, Expr::current(x).eq_(Expr::value(1.0)), 10).unwrap();
        let mut wa = WindowAssigner::new(spec);
        // event at ts 0 doesn't open
        assert!(wa.observe(&mk(0, 0, 0.0)).members.is_empty());
        // opener at ts 5
        let r = wa.observe(&mk(1, 5, 1.0));
        assert_eq!(r.opened.map(|w| w.id), Some(0));
        assert_eq!(r.members, vec![0]);
        // ts 14 still inside [5, 15)
        assert_eq!(wa.observe(&mk(2, 14, 0.0)).members, vec![0]);
        // ts 15 outside; closes w0
        let r = wa.observe(&mk(3, 15, 0.0));
        assert_eq!(r.closed.len(), 1);
        assert!(r.members.is_empty());
    }

    #[test]
    fn overlapping_predicate_windows() {
        let mut schema = Schema::new();
        let _ = schema.event_type("E");
        let x = schema.attr("x");
        let spec =
            WindowSpec::on_match_count(None, Expr::current(x).eq_(Expr::value(1.0)), 4).unwrap();
        let mut wa = WindowAssigner::new(spec);
        assert_eq!(wa.observe(&mk(0, 0, 1.0)).members, vec![0]);
        assert_eq!(wa.observe(&mk(1, 1, 1.0)).members, vec![0, 1]);
        assert_eq!(wa.observe(&mk(2, 2, 0.0)).members, vec![0, 1]);
        assert_eq!(wa.observe(&mk(3, 3, 0.0)).members, vec![0, 1]);
        // pos 4: w0 (start 0, ws 4) closes
        let r = wa.observe(&mk(4, 4, 0.0));
        assert_eq!(r.closed.len(), 1);
        assert_eq!(r.closed[0].id, 0);
        assert_eq!(r.members, vec![1]);
    }

    #[test]
    fn event_type_filter_on_open() {
        let mut schema = Schema::new();
        let a = schema.event_type("A");
        let b = schema.event_type("B");
        let spec = WindowSpec::on_match_count(Some(a), Expr::truth(), 2).unwrap();
        let mut wa = WindowAssigner::new(spec);
        let mk_typed = |seq, ty| Event::builder(ty).seq(seq).ts(seq).build();
        assert!(wa.observe(&mk_typed(0, b)).opened.is_none());
        assert!(wa.observe(&mk_typed(1, a)).opened.is_some());
    }

    #[test]
    fn rejects_degenerate_specs() {
        assert_eq!(
            WindowSpec::count_sliding(4, 0).unwrap_err(),
            WindowSpecError::ZeroSlide
        );
        assert_eq!(
            WindowSpec::count_sliding(0, 1).unwrap_err(),
            WindowSpecError::ZeroScope
        );
        assert_eq!(
            WindowSpec::on_match_time(None, Expr::truth(), 0).unwrap_err(),
            WindowSpecError::ZeroScope
        );
    }

    #[test]
    fn ingest_matches_observe() {
        // The allocation-free hot-path entry point must report exactly the
        // opens and closes of `observe` on the same stream.
        let mk_pair = || WindowAssigner::new(WindowSpec::count_sliding(4, 2).unwrap());
        let (mut a, mut b) = (mk_pair(), mk_pair());
        let mut closed = Vec::new();
        for i in 0..16 {
            let ev = mk(i, i, 0.0);
            let r = a.observe(&ev);
            closed.clear();
            let opened = b.ingest(&ev, &mut closed);
            assert_eq!(opened, r.opened, "event {i}");
            assert_eq!(closed, r.closed, "event {i}");
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn bounds_record_start_metadata() {
        let spec = WindowSpec::count_sliding(8, 4).unwrap();
        let mut wa = WindowAssigner::new(spec);
        for i in 0..5 {
            wa.observe(&mk(100 + i, 1000 + i, 0.0));
        }
        let w1 = wa.open_windows().nth(1).copied().unwrap();
        assert_eq!(w1.id, 1);
        assert_eq!(w1.start_seq, 104);
        assert_eq!(w1.start_ts, 1004);
        assert_eq!(w1.start_pos, 4);
    }
}
