//! `spectre-ctl` — one-shot control-socket client for spectre-server.
//!
//! Joins every argument after `--connect ADDR` into one command line,
//! sends it, prints the reply, and exits 0 on `OK …`, 1 on `ERR …` or any
//! transport failure.
//!
//! ```text
//! spectre-ctl --connect ADDR PING
//! spectre-ctl --connect ADDR DEPLOY TENANT 2 PATTERN (A B) ...
//! spectre-ctl --connect ADDR DRAIN
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn run() -> Result<bool, String> {
    let mut argv = std::env::args().skip(1);
    let mut connect = None;
    let mut words: Vec<String> = Vec::new();
    while let Some(arg) = argv.next() {
        if arg == "--connect" {
            connect = Some(
                argv.next()
                    .ok_or_else(|| "--connect needs a value".to_string())?,
            );
        } else {
            words.push(arg);
        }
    }
    let connect = connect.ok_or("usage: spectre-ctl --connect ADDR <COMMAND...>")?;
    if words.is_empty() {
        return Err("no command given".into());
    }
    let stream = TcpStream::connect(&connect).map_err(|e| format!("connect {connect}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(format!("{}\n", words.join(" ")).as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| e.to_string())?;
    let reply = reply.trim_end();
    if reply.is_empty() {
        return Err("server closed the connection without replying".into());
    }
    println!("{reply}");
    Ok(reply.starts_with("OK"))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("spectre-ctl: {msg}");
            ExitCode::FAILURE
        }
    }
}
