//! `spectre-feed` — a credit-aware load client for spectre-server.
//!
//! Generates the seeded NYSE fixture stream and streams a strided slice
//! of it (`--stride I/D` sends the events whose sequence number is
//! congruent to `I` mod `D`), so `D` cooperating processes cover the
//! whole stream exactly once and the server's sequencer merges them back
//! into the original order.
//!
//! ```text
//! spectre-feed --connect ADDR [--events N] [--seed S] [--stride I/D]
//!              [--tenant T] [--watermark-every N]
//! ```
//!
//! Prints `SENT <n>` and exits 0 after a clean finish.

use std::process::ExitCode;

use spectre_datasets::nyse::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_server::FeedClient;

struct Args {
    connect: String,
    events: usize,
    seed: u64,
    stride_index: u64,
    stride_of: u64,
    tenant: u32,
    watermark_every: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: String::new(),
        events: 100_000,
        seed: 17,
        stride_index: 0,
        stride_of: 1,
        tenant: 0,
        watermark_every: 0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--connect" => args.connect = value("--connect")?,
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|_| "bad --events".to_string())?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--stride" => {
                let spec = value("--stride")?;
                let (i, d) = spec.split_once('/').ok_or("usage: --stride I/D")?;
                args.stride_index = i.parse().map_err(|_| "bad stride index".to_string())?;
                args.stride_of = d.parse().map_err(|_| "bad stride divisor".to_string())?;
                if args.stride_of == 0 || args.stride_index >= args.stride_of {
                    return Err("stride needs I < D, D > 0".into());
                }
            }
            "--tenant" => {
                args.tenant = value("--tenant")?
                    .parse()
                    .map_err(|_| "bad --tenant".to_string())?;
            }
            "--watermark-every" => {
                args.watermark_every = value("--watermark-every")?
                    .parse()
                    .map_err(|_| "bad --watermark-every".to_string())?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.connect.is_empty() {
        return Err("--connect ADDR is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("spectre-feed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut schema = Schema::new();
    let generator = NyseGenerator::new(NyseConfig::small(args.events, args.seed), &mut schema);
    let mut client = match FeedClient::connect(&args.connect, args.tenant) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("spectre-feed: connect {}: {e}", args.connect);
            return ExitCode::FAILURE;
        }
    };
    let mut sent = 0u64;
    for event in generator {
        if event.seq() % args.stride_of != args.stride_index {
            continue;
        }
        if let Err(e) = client.send_event(&event) {
            eprintln!("spectre-feed: send: {e}");
            return ExitCode::FAILURE;
        }
        sent += 1;
        if args.watermark_every > 0 && sent.is_multiple_of(args.watermark_every) {
            if let Err(e) = client.send_watermark(event.ts()) {
                eprintln!("spectre-feed: watermark: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = client.finish() {
        eprintln!("spectre-feed: finish: {e}");
        return ExitCode::FAILURE;
    }
    println!("SENT {sent}");
    ExitCode::SUCCESS
}
