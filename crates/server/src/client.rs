//! A credit-aware framed client for the ingestion socket.
//!
//! [`FeedClient`] is both the building block for the integration tests and
//! the engine of the `spectre-feed` load binary. It speaks the wire
//! protocol in full: `HELLO` on connect, event/watermark frames out,
//! `CREDIT`/`THROTTLE` frames in, `BYE` plus a half-close on finish.
//!
//! Flow control is the client's half of the credit invariant: an event is
//! only written once a credit covers it. When the budget runs out the
//! client blocks on the socket until the server replenishes — which the
//! server only does as the engine (or the rate limiter) consumes earlier
//! events, so a client can never run ahead of the engine by more than one
//! window.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use spectre_events::codec::{
    encode, encode_bye, encode_hello, encode_watermark, Decoder, ServerFrame,
};
use spectre_events::{Event, StreamItem};

use crate::error::ServerError;

/// How long a client waits for credit before giving up on the server.
const CREDIT_DEADLINE: Duration = Duration::from_secs(30);

/// Flush the write buffer once it grows past this.
const FLUSH_THRESHOLD: usize = 32 * 1024;

/// A blocking, credit-aware connection to a spectre-server ingestion
/// socket.
#[derive(Debug)]
pub struct FeedClient {
    stream: TcpStream,
    decoder: Decoder,
    wbuf: BytesMut,
    credit: u64,
    /// Total advisory throttle time the server has requested so far.
    throttled_nanos: u64,
    /// Honor throttle frames by sleeping (the load generator does; tests
    /// that only assert counters turn this off to stay fast).
    honor_throttle: bool,
}

impl FeedClient {
    /// Connects and sends the `HELLO` tenant declaration.
    pub fn connect(addr: impl ToSocketAddrs, tenant: u32) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let mut client = FeedClient {
            stream,
            decoder: Decoder::new(),
            wbuf: BytesMut::new(),
            credit: 0,
            throttled_nanos: 0,
            honor_throttle: true,
        };
        encode_hello(u64::from(tenant), &mut client.wbuf);
        client.flush()?;
        Ok(client)
    }

    /// Disables sleeping on `THROTTLE` frames (they are still counted).
    pub fn ignore_throttle(&mut self) {
        self.honor_throttle = false;
    }

    /// Total advisory pause the server has requested, in nanoseconds.
    pub fn throttled_nanos(&self) -> u64 {
        self.throttled_nanos
    }

    /// Sends one event, blocking for credit if the budget is spent.
    pub fn send_event(&mut self, event: &Event) -> Result<(), ServerError> {
        while self.credit == 0 {
            self.wait_feedback()?;
        }
        self.credit -= 1;
        encode(event, &mut self.wbuf);
        if self.wbuf.len() >= FLUSH_THRESHOLD {
            self.flush()?;
        }
        Ok(())
    }

    /// Sends a watermark. Watermarks are punctuation and spend no credit.
    pub fn send_watermark(&mut self, stream_ts: u64) -> Result<(), ServerError> {
        encode_watermark(stream_ts, &mut self.wbuf);
        if self.wbuf.len() >= FLUSH_THRESHOLD {
            self.flush()?;
        }
        Ok(())
    }

    /// Sends one stream item (event or watermark).
    pub fn send_item(&mut self, item: &StreamItem) -> Result<(), ServerError> {
        match item {
            StreamItem::Event(ev) => self.send_event(ev),
            StreamItem::Watermark(ts) => self.send_watermark(*ts),
        }
    }

    /// Flushes buffered frames to the socket.
    pub fn flush(&mut self) -> Result<(), ServerError> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Blocks until the server sends at least one feedback frame (credit
    /// or throttle), or the deadline passes.
    fn wait_feedback(&mut self) -> Result<(), ServerError> {
        // Credit may be waiting behind an unflushed burst.
        self.flush()?;
        let deadline = Instant::now() + CREDIT_DEADLINE;
        let mut chunk = [0u8; 4096];
        loop {
            if self.drain_feedback()? {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(ServerError::Control(
                    "timed out waiting for credit from the server".into(),
                ));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ServerError::Control(
                        "server closed the connection while the client waited for credit".into(),
                    ));
                }
                Ok(n) => self.decoder.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Applies every decoded server frame; returns whether any arrived.
    fn drain_feedback(&mut self) -> Result<bool, ServerError> {
        let mut any = false;
        while let Some(frame) = self.decoder.next_server_frame()? {
            any = true;
            match frame {
                ServerFrame::Credit(n) => self.credit += n,
                ServerFrame::Throttle(nanos) => {
                    self.throttled_nanos += nanos;
                    if self.honor_throttle {
                        // Cap the advisory pause so a hostile server can't
                        // park the client forever.
                        std::thread::sleep(Duration::from_nanos(nanos.min(1_000_000_000)));
                    }
                }
            }
        }
        Ok(any)
    }

    /// Cleanly finishes: `BYE`, flush, half-close, then read to EOF so the
    /// server observes the close after consuming everything.
    pub fn finish(mut self) -> Result<(), ServerError> {
        encode_bye(&mut self.wbuf);
        self.flush()?;
        self.stream.shutdown(Shutdown::Write)?;
        self.stream
            .set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(()),
                Ok(_) => {} // discard trailing credit frames
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(()); // server is busy draining; close anyway
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Drops the connection on the floor — an abnormal close, as seen by
    /// the server (no `BYE`).
    pub fn abort(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
