//! The per-connection read loop: framed decode, middleware chain, credit
//! back to the client, forward to the feed thread.
//!
//! Credit protocol: the server grants an initial window of
//! `credit_window` events and replenishes as the feed thread releases
//! events into the engine (or the rate limiter drops them — a spent
//! client credit must always come back, or the client stalls). The target
//! invariant is `granted − (released + dropped) ≤ window`: a client can
//! never have more than one window of events in flight between its socket
//! and the engine.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

use bytes::BytesMut;
use spectre_events::codec::{encode_credit, encode_throttle, ClientFrame, Decoder};
use spectre_events::StreamItem;

use crate::feed::{ConnGate, Msg};
use crate::middleware::{ConnInfo, Decision};
use crate::stats::ServerCounters;
use crate::ServerShared;

/// Runs one connection to completion. Returns `true` for a clean close
/// (BYE then EOF). The caller (listener) wraps this in `catch_unwind` and
/// reports the close to the stack and the feed thread.
pub(crate) fn serve_conn(
    stream: &TcpStream,
    conn: &ConnInfo,
    gate: &Arc<ConnGate>,
    shared: &Arc<ServerShared>,
    tx: &SyncSender<Msg>,
) -> bool {
    if stream.set_nodelay(true).is_err()
        || stream.set_read_timeout(Some(shared.cfg.read_tick)).is_err()
    {
        return false;
    }
    if shared.stack.on_accept(conn) != Decision::Forward {
        return false;
    }
    let window = shared.cfg.credit_window;
    let mut credited = window;
    let mut forwarded = 0u64; // event frames handed to the feed thread
    let mut dropped = 0u64; // event frames discarded by the chain
    let mut saw_bye = false;
    let mut decoder = Decoder::new();
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut wbuf = BytesMut::new();
    // Initial grant: the client may send a full window before any release.
    encode_credit(window, &mut wbuf);
    ServerCounters::add(&shared.counters.credits_granted, window);
    if write_out(stream, &mut wbuf).is_err() {
        return false;
    }
    loop {
        match (&mut (&*stream)).read(&mut read_buf) {
            Ok(0) => return saw_bye,
            Ok(n) => {
                decoder.extend(&read_buf[..n]);
                loop {
                    let frame = match decoder.next_client_frame() {
                        Ok(Some(frame)) => frame,
                        Ok(None) => break,
                        Err(e) => {
                            ServerCounters::bump(&shared.counters.decode_errors);
                            eprintln!(
                                "spectre-server: connection {} ({}): {e}; closing",
                                conn.id, conn.peer
                            );
                            return false;
                        }
                    };
                    let now_ms = shared.now_ms();
                    conn.touch(now_ms);
                    match shared.stack.on_frame(conn, &frame, now_ms) {
                        Decision::Forward => {}
                        Decision::Drop => {
                            if matches!(frame, ClientFrame::Item(StreamItem::Event(_))) {
                                dropped += 1;
                            }
                            continue;
                        }
                        Decision::Throttle(nanos) => {
                            encode_throttle(nanos, &mut wbuf);
                        }
                        Decision::Close => return false,
                    }
                    match frame {
                        ClientFrame::Hello(tenant) => {
                            conn.set_tenant(u32::try_from(tenant).unwrap_or(u32::MAX));
                        }
                        ClientFrame::Bye => saw_bye = true,
                        ClientFrame::Item(item) => {
                            // The chaos hook: a poisoned tenant's events
                            // blow up the connection thread, exercising
                            // the panic layer end to end.
                            if matches!(item, StreamItem::Event(_)) {
                                if let Some(poison) = shared.cfg.chaos_panic_tenant {
                                    assert!(
                                        conn.tenant() != poison,
                                        "chaos: poisoned tenant {poison} on connection {}",
                                        conn.id
                                    );
                                }
                                forwarded += 1;
                            }
                            if tx
                                .send(Msg::Item {
                                    conn: conn.id,
                                    item,
                                })
                                .is_err()
                            {
                                // Feed thread gone: the server is done.
                                return false;
                            }
                        }
                    }
                }
                replenish(
                    stream,
                    conn,
                    gate,
                    shared,
                    &mut wbuf,
                    &mut credited,
                    forwarded,
                    dropped,
                );
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let now_ms = shared.now_ms();
                if shared.stack.on_tick(conn, now_ms) == Decision::Close {
                    return false;
                }
                if shared.past_drain_deadline(now_ms) {
                    eprintln!(
                        "spectre-server: connection {} ({}) still open past the drain \
                         grace period, closing",
                        conn.id, conn.peer
                    );
                    return false;
                }
                replenish(
                    stream,
                    conn,
                    gate,
                    shared,
                    &mut wbuf,
                    &mut credited,
                    forwarded,
                    dropped,
                );
            }
            Err(_) => return false,
        }
    }
}

/// Sends a credit top-up when enough releases have accumulated (or the
/// client is about to run dry). Any buffered throttle frames flush too.
#[allow(clippy::too_many_arguments)]
fn replenish(
    stream: &TcpStream,
    _conn: &ConnInfo,
    gate: &Arc<ConnGate>,
    shared: &Arc<ServerShared>,
    wbuf: &mut BytesMut,
    credited: &mut u64,
    forwarded: u64,
    dropped: u64,
) {
    let window = shared.cfg.credit_window;
    let released = gate.released.load(Ordering::Acquire);
    let target = released + dropped + window;
    let grant = target.saturating_sub(*credited);
    // The client's remaining allowance is what we granted minus every
    // event it has sent (forwarded or dropped, it spent a credit either
    // way).
    let remaining = credited.saturating_sub(forwarded + dropped);
    if grant > 0 && (grant * 2 >= window || remaining * 4 <= window) {
        encode_credit(grant, wbuf);
        *credited += grant;
        ServerCounters::add(&shared.counters.credits_granted, grant);
    }
    let _ = write_out(stream, wbuf);
}

fn write_out(stream: &TcpStream, wbuf: &mut BytesMut) -> std::io::Result<()> {
    if wbuf.is_empty() {
        return Ok(());
    }
    let res = (&mut (&*stream)).write_all(wbuf);
    wbuf.clear();
    res
}
