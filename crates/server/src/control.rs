//! The line-protocol control socket: live operations without a restart.
//!
//! One command per line, one reply line per command (`OK …` or `ERR …`):
//!
//! ```text
//! PING
//! QUERIES
//! STATS
//! DEPLOY [TENANT <n>] <MATCH_RECOGNIZE query text on one line>
//! RETIRE <query-id>
//! QUOTA <tenant> [WEIGHT <w>] [MAX_VERSIONS <v>] [MAX_QUERIES <q>]
//! DRAIN
//! ```
//!
//! Engine-touching commands are forwarded to the feed thread (the
//! engine's single owner) and answered with its reply. `DRAIN` starts the
//! graceful shutdown: stop accepting, let open connections finish (up to
//! the grace period), end-of-stream the engine, flush the final report.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use spectre_core::TenantQuota;

use crate::feed::{ControlCmd, Msg};
use crate::ServerShared;

/// Serves control connections until the server stops. Each connection is
/// handled on its own thread (an idle admin session must not block the
/// next one).
pub(crate) fn control_loop(listener: TcpListener, shared: Arc<ServerShared>, tx: SyncSender<Msg>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::Acquire) {
                    break;
                }
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || serve_control_conn(stream, &shared, &tx));
            }
            Err(_) => {
                if shared.stopping.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
}

fn serve_control_conn(stream: TcpStream, shared: &Arc<ServerShared>, tx: &SyncSender<Msg>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let reply = handle_line(line.trim(), shared, tx);
        if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            return;
        }
    }
}

fn handle_line(line: &str, shared: &Arc<ServerShared>, tx: &SyncSender<Msg>) -> String {
    if line.is_empty() {
        return "ERR empty command".into();
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "PING" => "OK pong".into(),
        "DRAIN" => {
            crate::initiate_drain(shared, tx);
            "OK draining".into()
        }
        "QUERIES" => roundtrip(tx, ControlCmd::Queries),
        "STATS" => roundtrip(tx, ControlCmd::Stats),
        "DEPLOY" => match parse_deploy(rest) {
            Ok(cmd) => roundtrip(tx, cmd),
            Err(msg) => format!("ERR {msg}"),
        },
        "RETIRE" => match rest.parse::<u32>() {
            Ok(qid) => roundtrip(tx, ControlCmd::Retire { qid }),
            Err(_) => "ERR usage: RETIRE <query-id>".into(),
        },
        "QUOTA" => match parse_quota(rest) {
            Ok(cmd) => roundtrip(tx, cmd),
            Err(msg) => format!("ERR {msg}"),
        },
        other => format!("ERR unknown command {other}"),
    }
}

fn parse_deploy(rest: &str) -> Result<ControlCmd, String> {
    let (tenant, text) = match rest
        .strip_prefix("TENANT ")
        .or_else(|| rest.strip_prefix("tenant "))
    {
        Some(after) => {
            let (id, text) = after
                .split_once(char::is_whitespace)
                .ok_or("usage: DEPLOY [TENANT <n>] <query text>")?;
            let tenant: u32 = id.parse().map_err(|_| format!("bad tenant id {id:?}"))?;
            (tenant, text.trim())
        }
        None => (0, rest),
    };
    if text.is_empty() {
        return Err("usage: DEPLOY [TENANT <n>] <query text>".into());
    }
    Ok(ControlCmd::Deploy {
        tenant,
        text: text.to_string(),
    })
}

fn parse_quota(rest: &str) -> Result<ControlCmd, String> {
    let mut tokens = rest.split_whitespace();
    let tenant: u32 = tokens
        .next()
        .ok_or("usage: QUOTA <tenant> [WEIGHT <w>] [MAX_VERSIONS <v>] [MAX_QUERIES <q>]")?
        .parse()
        .map_err(|_| "bad tenant id".to_string())?;
    let mut quota = TenantQuota::default();
    while let Some(key) = tokens.next() {
        let value = tokens
            .next()
            .ok_or_else(|| format!("missing value for {key}"))?;
        match key.to_ascii_uppercase().as_str() {
            "WEIGHT" => {
                quota =
                    quota.with_weight(value.parse().map_err(|_| format!("bad weight {value:?}"))?);
            }
            "MAX_VERSIONS" => {
                quota = quota.with_max_versions(
                    value
                        .parse()
                        .map_err(|_| format!("bad max_versions {value:?}"))?,
                );
            }
            "MAX_QUERIES" => {
                quota = quota.with_max_queries(
                    value
                        .parse()
                        .map_err(|_| format!("bad max_queries {value:?}"))?,
                );
            }
            other => return Err(format!("unknown quota field {other}")),
        }
    }
    Ok(ControlCmd::Quota { tenant, quota })
}

/// Sends a command to the feed thread and waits (bounded) for its reply.
fn roundtrip(tx: &SyncSender<Msg>, cmd: ControlCmd) -> String {
    let (reply_tx, reply_rx) = channel();
    if tx
        .send(Msg::Control {
            cmd,
            reply: reply_tx,
        })
        .is_err()
    {
        return "ERR server is shut down".into();
    }
    match reply_rx.recv_timeout(Duration::from_secs(10)) {
        Ok(Ok(msg)) => format!("OK {msg}"),
        Ok(Err(e)) => format!("ERR {e}"),
        Err(_) => "ERR control reply timed out".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_and_quota_lines_parse() {
        match parse_deploy("TENANT 3 PATTERN (A) DEFINE A AS (TRUE)").unwrap() {
            ControlCmd::Deploy { tenant, text } => {
                assert_eq!(tenant, 3);
                assert!(text.starts_with("PATTERN"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_deploy("PATTERN (A) DEFINE A AS (TRUE)").unwrap() {
            ControlCmd::Deploy { tenant, .. } => assert_eq!(tenant, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_deploy("").is_err());
        match parse_quota("5 WEIGHT 4 MAX_QUERIES 2").unwrap() {
            ControlCmd::Quota { tenant, quota } => {
                assert_eq!(tenant, 5);
                assert_eq!(quota.weight, 4);
                assert_eq!(quota.max_queries, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_quota("5 WEIGHT").is_err());
        assert!(parse_quota("5 COLOR red").is_err());
    }
}
