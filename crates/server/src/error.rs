//! Server-side error type: every failure the front-end can hit is a value
//! it can log and recover from, never a panic on the serving path.

use std::fmt;

use spectre_core::EngineError;
use spectre_events::codec::DecodeError;

/// Any failure of the server front-end: socket I/O, a malformed frame, an
/// engine misuse, a bad control command, or an invalid configuration
/// (e.g. a middleware stack declared out of order).
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// A socket or listener operation failed.
    Io(std::io::Error),
    /// The engine rejected an operation (see [`EngineError`]).
    Engine(EngineError),
    /// A client sent bytes that do not decode as frames.
    Decode(DecodeError),
    /// A control command was malformed or referenced something unknown.
    Control(String),
    /// The server configuration is invalid — including a middleware stack
    /// whose layers are declared in a conflicting order.
    Config(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
            ServerError::Decode(e) => write!(f, "frame decode error: {e}"),
            ServerError::Control(msg) => write!(f, "control error: {msg}"),
            ServerError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Engine(e) => Some(e),
            ServerError::Decode(e) => Some(e),
            ServerError::Control(_) | ServerError::Config(_) => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> Self {
        ServerError::Engine(e)
    }
}

impl From<DecodeError> for ServerError {
    fn from(e: DecodeError) -> Self {
        ServerError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display_are_non_panicking() {
        let io: ServerError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        let eng: ServerError = EngineError::SessionFinished.into();
        assert!(eng.to_string().contains("finished"));
        let dec: ServerError = DecodeError::Truncated.into();
        assert!(dec.to_string().contains("truncated"));
        // std::error::Error is wired through, with sources.
        let as_err: &dyn std::error::Error = &eng;
        assert!(as_err.source().is_some());
    }
}
