//! The feed thread: single owner of the engine session.
//!
//! Every connection thread funnels its decoded stream items into one
//! bounded channel; this thread is the only one that touches the
//! [`SpectreEngine`]. Back-pressure composes end to end: the engine's
//! [`PushResult::Full`](spectre_core::PushResult) blocks the feed thread
//! in its retry loop (each retry runs a maintenance round), the bounded
//! channel then blocks the connection threads, which stop reading their
//! sockets and stop granting credit — so a fast client is ultimately
//! throttled by the engine's speculative bound, never by unbounded
//! buffering.
//!
//! In [`IngestOrder::Seq`] mode a sequencer releases events to the engine
//! in dense sequence-number order, which makes the merged multi-client
//! stream deterministic (bit-identical to a solo session fed the ordered
//! stream). Credit is released only when an event leaves the sequencer,
//! so the reorder buffer is bounded by the sum of the per-connection
//! credit windows.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Instant;

use spectre_core::{PushResult, QueryId, Report, SpectreEngine, TenantId, TenantQuota};
use spectre_events::{Event, Schema, StreamItem};
use spectre_query::parser::parse_query;
use spectre_query::ComplexEvent;

use crate::error::ServerError;
use crate::stats::{PublishedStats, ServerCounters};
use crate::{IngestOrder, ServerShared};

/// Per-connection credit gate: the feed thread counts events released to
/// the engine (or dropped as stale); the connection thread turns the count
/// into credit frames back to its client.
#[derive(Debug, Default)]
pub(crate) struct ConnGate {
    /// Events of this connection released by the feed thread.
    pub released: AtomicU64,
}

/// A command the control plane forwards to the feed thread (the engine
/// and the schema live there).
#[derive(Debug)]
pub(crate) enum ControlCmd {
    /// Parse and deploy a query for a tenant.
    Deploy { tenant: u32, text: String },
    /// Retire a deployed query.
    Retire { qid: u32 },
    /// Set a tenant's quota.
    Quota { tenant: u32, quota: TenantQuota },
    /// List deployed queries.
    Queries,
    /// One-line ingestion statistics.
    Stats,
}

/// Messages into the feed thread.
pub(crate) enum Msg {
    /// A connection opened; its gate is registered for credit accounting.
    Opened { conn: u64, gate: Arc<ConnGate> },
    /// A decoded stream item from a connection.
    Item { conn: u64, item: StreamItem },
    /// A connection closed (`clean` = BYE before EOF).
    Closed { conn: u64, clean: bool },
    /// A control command with a reply channel.
    Control {
        cmd: ControlCmd,
        reply: Sender<Result<String, ServerError>>,
    },
    /// Begin graceful drain: stop expecting new connections, finish when
    /// the open ones are gone.
    Drain,
}

/// What a drained server leaves behind.
#[derive(Debug)]
pub struct ServerOutcome {
    /// The engine's final report.
    pub report: Report,
    /// Every committed complex event, per query in commit order — the
    /// mid-run drains concatenated with the final report's remainder.
    pub outputs: BTreeMap<QueryId, Vec<ComplexEvent>>,
    /// The final report as a one-line JSON summary.
    pub summary_json: String,
}

/// Sequence-order release buffer for [`IngestOrder::Seq`].
struct Sequencer {
    next: u64,
    pending: BTreeMap<u64, (u64, Event)>,
}

/// The feed loop. Returns once a drain completes (all connections closed
/// after [`Msg::Drain`]) with the final outcome.
pub(crate) fn feed_loop(
    mut engine: SpectreEngine,
    mut schema: Schema,
    rx: Receiver<Msg>,
    shared: Arc<ServerShared>,
) -> Result<ServerOutcome, ServerError> {
    let mut gates: HashMap<u64, Arc<ConnGate>> = HashMap::new();
    let mut open_conns = 0usize;
    let mut draining = false;
    let mut outputs: BTreeMap<QueryId, Vec<ComplexEvent>> = BTreeMap::new();
    let mut outputs_total = 0u64;
    let mut sequencer = match shared.cfg.order {
        IngestOrder::Seq => Some(Sequencer {
            next: 0,
            pending: BTreeMap::new(),
        }),
        IngestOrder::Arrival => None,
    };
    let mut last_publish = Instant::now();
    publish(&engine, &shared, outputs_total, false);
    loop {
        let mut disconnected = false;
        match rx.recv_timeout(shared.cfg.read_tick) {
            Ok(msg) => {
                handle_msg(
                    msg,
                    &mut engine,
                    &mut schema,
                    &shared,
                    &mut gates,
                    &mut open_conns,
                    &mut draining,
                    &mut sequencer,
                );
                // Opportunistically drain a burst without sleeping again.
                for _ in 0..256 {
                    match rx.try_recv() {
                        Ok(msg) => handle_msg(
                            msg,
                            &mut engine,
                            &mut schema,
                            &shared,
                            &mut gates,
                            &mut open_conns,
                            &mut draining,
                            &mut sequencer,
                        ),
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // No traffic: keep the engine progressing anyway.
                let _ = engine.maintain();
            }
            Err(RecvTimeoutError::Disconnected) => disconnected = true,
        }
        if let Ok(tagged) = engine.try_drain_outputs() {
            for (qid, ce) in tagged {
                outputs_total += 1;
                outputs.entry(qid).or_default().push(ce);
            }
        }
        if last_publish.elapsed() >= shared.cfg.publish_every {
            publish(&engine, &shared, outputs_total, false);
            last_publish = Instant::now();
        }
        if (draining && open_conns == 0) || disconnected {
            break;
        }
    }
    // End of service: flush whatever the sequencer still holds (a drain
    // with a died client can leave gaps), then finish the session.
    if let Some(seq) = sequencer.as_mut() {
        flush_sequencer(seq, &mut engine, &gates, &shared);
    }
    let report = engine.try_finish()?;
    for (qid, qr) in &report.queries {
        let slot = outputs.entry(*qid).or_default();
        outputs_total += qr.complex_events.len() as u64;
        slot.extend(qr.complex_events.iter().cloned());
    }
    let mut stats = snapshot_stats(&engine, outputs_total, true);
    stats.snapshot = report.metrics;
    stats.input_events = report.input_events;
    shared.stats.publish(stats);
    let summary_json = report.summary_json();
    Ok(ServerOutcome {
        report,
        outputs,
        summary_json,
    })
}

#[allow(clippy::too_many_arguments)]
fn handle_msg(
    msg: Msg,
    engine: &mut SpectreEngine,
    schema: &mut Schema,
    shared: &Arc<ServerShared>,
    gates: &mut HashMap<u64, Arc<ConnGate>>,
    open_conns: &mut usize,
    draining: &mut bool,
    sequencer: &mut Option<Sequencer>,
) {
    match msg {
        Msg::Opened { conn, gate } => {
            gates.insert(conn, gate);
            *open_conns += 1;
        }
        Msg::Item { conn, item } => match item {
            StreamItem::Event(event) => match sequencer {
                Some(seq) => {
                    seq.pending.insert(event.seq(), (conn, event));
                    release_ready(seq, engine, gates, shared);
                }
                None => {
                    push_blocking(engine, event);
                    release_credit(gates, conn, 1);
                }
            },
            StreamItem::Watermark(ts) => {
                // Watermarks are punctuation, not payload: they bypass the
                // sequencer (which orders events by seq) and advance the
                // reorder stage directly.
                if !engine.is_finished() {
                    engine.advance_watermark(ts);
                }
            }
        },
        Msg::Closed { conn, clean } => {
            *open_conns = open_conns.saturating_sub(1);
            if !clean {
                // An abnormal disconnect may have taken undelivered
                // sequence numbers with it; flush past the gaps so the
                // survivors' buffered events keep flowing.
                if let Some(seq) = sequencer.as_mut() {
                    flush_sequencer(seq, engine, gates, shared);
                }
            }
            gates.remove(&conn);
        }
        Msg::Control { cmd, reply } => {
            let _ = reply.send(handle_control(cmd, engine, schema));
        }
        Msg::Drain => *draining = true,
    }
}

/// Pushes one event, retrying through back-pressure (each retry runs a
/// maintenance round, so this always terminates).
fn push_blocking(engine: &mut SpectreEngine, mut event: Event) {
    loop {
        match engine.try_push(event) {
            Ok(PushResult::Accepted) => return,
            Ok(PushResult::Full(back)) => event = back,
            Err(_) => return, // finished mid-drain: drop the straggler
        }
    }
}

fn release_credit(gates: &HashMap<u64, Arc<ConnGate>>, conn: u64, n: u64) {
    if let Some(gate) = gates.get(&conn) {
        gate.released.fetch_add(n, Ordering::Release);
    }
}

/// Releases the dense prefix the sequencer now holds; drops stale
/// duplicates below the release point (their credit is still returned, or
/// the sender would stall).
fn release_ready(
    seq: &mut Sequencer,
    engine: &mut SpectreEngine,
    gates: &HashMap<u64, Arc<ConnGate>>,
    shared: &ServerShared,
) {
    while let Some((&key, _)) = seq.pending.iter().next() {
        if key < seq.next {
            let (conn, _) = seq.pending.remove(&key).expect("key just observed");
            ServerCounters::bump(&shared.counters.seq_stale_dropped);
            release_credit(gates, conn, 1);
            continue;
        }
        if key != seq.next {
            break;
        }
        let (conn, event) = seq.pending.remove(&key).expect("key just observed");
        push_blocking(engine, event);
        release_credit(gates, conn, 1);
        seq.next += 1;
    }
}

/// Releases everything the sequencer holds, in order, skipping gaps —
/// used when a disconnect or drain guarantees the missing numbers can
/// never arrive.
fn flush_sequencer(
    seq: &mut Sequencer,
    engine: &mut SpectreEngine,
    gates: &HashMap<u64, Arc<ConnGate>>,
    shared: &ServerShared,
) {
    let mut gaps = 0u64;
    while let Some((&key, _)) = seq.pending.iter().next() {
        if key > seq.next {
            gaps += 1;
            seq.next = key;
        }
        let (conn, event) = seq.pending.remove(&key).expect("key just observed");
        if key < seq.next {
            ServerCounters::bump(&shared.counters.seq_stale_dropped);
            release_credit(gates, conn, 1);
            continue;
        }
        push_blocking(engine, event);
        release_credit(gates, conn, 1);
        seq.next += 1;
    }
    ServerCounters::add(&shared.counters.seq_gaps_skipped, gaps);
}

fn handle_control(
    cmd: ControlCmd,
    engine: &mut SpectreEngine,
    schema: &mut Schema,
) -> Result<String, ServerError> {
    match cmd {
        ControlCmd::Deploy { tenant, text } => {
            let query = parse_query(&text, schema)
                .map_err(|e| ServerError::Control(format!("bad query: {e}")))?;
            let qid = engine.deploy_query_for(TenantId(tenant), &Arc::new(query))?;
            Ok(format!("deployed {qid}"))
        }
        ControlCmd::Retire { qid } => {
            let drained = engine.retire_query(QueryId(qid))?;
            Ok(format!(
                "retired q{qid} ({} undrained outputs)",
                drained.len()
            ))
        }
        ControlCmd::Quota { tenant, quota } => {
            engine.set_tenant_quota(TenantId(tenant), quota)?;
            Ok(format!("quota set for t{tenant}"))
        }
        ControlCmd::Queries => {
            let rows: Vec<String> = engine
                .query_ids()
                .into_iter()
                .map(|qid| {
                    let tenant = engine
                        .query_tenant(qid)
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "?".into());
                    format!("{qid}:{tenant}")
                })
                .collect();
            Ok(if rows.is_empty() {
                "none".into()
            } else {
                rows.join(" ")
            })
        }
        ControlCmd::Stats => Ok(format!(
            "input_events={} queries={}",
            engine.events_ingested(),
            engine.query_ids().len()
        )),
    }
}

fn snapshot_stats(engine: &SpectreEngine, outputs: u64, finished: bool) -> PublishedStats {
    PublishedStats {
        snapshot: engine.metrics(),
        per_query: engine
            .per_query_metrics()
            .into_iter()
            .map(|(qid, m)| {
                let tenant = engine.query_tenant(qid).unwrap_or(TenantId::DEFAULT);
                (qid, tenant, m)
            })
            .collect(),
        tenants: engine.tenant_metrics(),
        input_events: engine.events_ingested(),
        outputs,
        finished,
    }
}

fn publish(engine: &SpectreEngine, shared: &ServerShared, outputs: u64, finished: bool) {
    shared
        .stats
        .publish(snapshot_stats(engine, outputs, finished));
}
