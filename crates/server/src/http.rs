//! Hand-rolled HTTP/1.0 sidecar: `GET /metrics` and `GET /healthz`.
//!
//! No HTTP dependency exists in the workspace, and none is needed: the
//! sidecar answers exactly two fixed routes, reads only the request line,
//! and closes after every response (`Connection: close`), which is all a
//! Prometheus scraper requires.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::prom;
use crate::ServerShared;

/// Serves scrape requests until the server stops.
pub(crate) fn http_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::Acquire) {
                    break;
                }
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _ = serve_request(stream, &shared);
                });
            }
            Err(_) => {
                if shared.stopping.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
}

fn serve_request(mut stream: TcpStream, shared: &Arc<ServerShared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    // Read until the end of the headers (or 8 KiB, whichever first); only
    // the request line matters.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prom::render(shared),
        ),
        "/healthz" => {
            let body = if shared.draining.load(Ordering::Acquire) {
                "draining\n"
            } else {
                "ok\n"
            };
            ("200 OK", "text/plain; charset=utf-8", body.to_string())
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}
