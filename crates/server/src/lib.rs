//! spectre-server: a standing multi-client ingestion front-end for one
//! [`spectre_core::SpectreEngine`] session.
//!
//! The server binds three sockets:
//!
//! * an **ingestion** socket speaking the framed wire protocol of
//!   [`spectre_events::codec`] — events and watermarks in, credit and
//!   throttle frames out, one thread per connection, every connection
//!   funneled through a bounded channel into the single feed thread that
//!   owns the engine;
//! * an **HTTP sidecar** serving `GET /metrics` (Prometheus text
//!   exposition) and `GET /healthz`;
//! * a **control** socket speaking a line protocol (`DEPLOY`, `RETIRE`,
//!   `QUOTA`, `QUERIES`, `STATS`, `DRAIN`, `PING`) for live operations.
//!
//! Every frame a connection reads passes through an ordered
//! [`middleware`] chain — panic isolation, token-bucket rate limiting,
//! idle timeouts, counters — whose layer order is declared (and conflict
//! checked) in one place.
//!
//! ```no_run
//! use std::sync::Arc;
//! use spectre_events::Schema;
//! use spectre_query::queries::{self, Direction};
//! use spectre_server::{FeedClient, ServerConfig, Server};
//!
//! let mut schema = Schema::new();
//! let query = Arc::new(queries::q1(&mut schema, 2, 2000, Direction::Rising));
//! let handle = Server::start(
//!     ServerConfig::default(),
//!     schema.clone(),
//!     vec![(spectre_core::TenantId::DEFAULT, query)],
//! )
//! .unwrap();
//! let client = FeedClient::connect(handle.ingest_addr(), 0).unwrap();
//! // ... send_event / send_watermark ...
//! client.finish().unwrap();
//! handle.drain();
//! let outcome = handle.join().unwrap();
//! println!("{}", outcome.summary_json);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spectre_core::{SpectreConfig, SpectreEngine, TenantId, TenantQuota};
use spectre_events::Schema;
use spectre_query::Query;

mod client;
mod conn;
mod control;
mod error;
mod feed;
mod http;
mod listener;
pub mod middleware;
mod prom;
mod stats;

pub use client::FeedClient;
pub use error::ServerError;
pub use feed::ServerOutcome;
pub use middleware::{OverLimitPolicy, RateLimitConfig};
pub use stats::ServerCounters;

use feed::Msg;
use middleware::MiddlewareStack;
use stats::StatsSlot;

/// In which order the feed thread releases multi-client events into the
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOrder {
    /// Release in dense event sequence-number order (a reorder buffer in
    /// front of the engine). Clients streaming disjoint slices of one
    /// sequenced stream merge back into it exactly, making the session
    /// bit-identical to a solo engine fed the ordered stream.
    Seq,
    /// Release in arrival order, interleaving clients as the scheduler
    /// happens to run them. Maximum throughput, no cross-client ordering.
    Arrival,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine configuration for the hosted session.
    pub engine: SpectreConfig,
    /// Run the engine in threaded mode (default: the deterministic
    /// simulation mode, where only the feed thread does engine work).
    pub threaded: bool,
    /// Multi-client merge order (default [`IngestOrder::Seq`]).
    pub order: IngestOrder,
    /// Ingestion socket address (default `127.0.0.1:0` — an ephemeral
    /// port, reported by [`ServerHandle::ingest_addr`]).
    pub ingest_addr: SocketAddr,
    /// Metrics/health HTTP sidecar address (default `127.0.0.1:0`).
    pub http_addr: SocketAddr,
    /// Control socket address (default `127.0.0.1:0`).
    pub control_addr: SocketAddr,
    /// Per-connection credit window: the most events one client may have
    /// in flight between its socket and the engine (default 8192).
    pub credit_window: u64,
    /// Bound of the connections→feed channel, in messages (default 1024).
    pub feed_queue: usize,
    /// Socket read timeout; also the cadence of middleware ticks and the
    /// feed thread's idle maintenance (default 50 ms).
    pub read_tick: Duration,
    /// Close connections idle longer than this (default 30 s).
    pub idle_timeout: Duration,
    /// Optional token-bucket rate limiting (default off).
    pub rate_limit: Option<RateLimitConfig>,
    /// How long a drain waits for open connections before force-closing
    /// them (default 5 s).
    pub drain_grace: Duration,
    /// How often the feed thread publishes engine stats for `/metrics`
    /// (default 100 ms).
    pub publish_every: Duration,
    /// Chaos hook for panic-containment tests: event frames from this
    /// tenant panic their connection thread (default off).
    pub chaos_panic_tenant: Option<u32>,
    /// Tenant quotas applied at session build.
    pub quotas: Vec<(TenantId, TenantQuota)>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let loopback: SocketAddr = ([127, 0, 0, 1], 0).into();
        ServerConfig {
            engine: SpectreConfig::default(),
            threaded: false,
            order: IngestOrder::Seq,
            ingest_addr: loopback,
            http_addr: loopback,
            control_addr: loopback,
            credit_window: 8192,
            feed_queue: 1024,
            read_tick: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(30),
            rate_limit: None,
            drain_grace: Duration::from_secs(5),
            publish_every: Duration::from_millis(100),
            chaos_panic_tenant: None,
            quotas: Vec::new(),
        }
    }
}

/// The runtime slice of [`ServerConfig`] the worker threads consult.
#[derive(Debug, Clone)]
pub(crate) struct RuntimeCfg {
    pub order: IngestOrder,
    pub credit_window: u64,
    pub read_tick: Duration,
    pub publish_every: Duration,
    pub chaos_panic_tenant: Option<u32>,
    pub drain_grace: Duration,
}

/// State shared by every server thread.
pub(crate) struct ServerShared {
    pub cfg: RuntimeCfg,
    pub counters: Arc<ServerCounters>,
    pub stack: MiddlewareStack,
    pub stats: StatsSlot,
    /// New ingestion connections are admitted.
    pub accepting: AtomicBool,
    /// A drain has started (healthz reports `draining`).
    pub draining: AtomicBool,
    /// The aux accept loops (http/control) should exit.
    pub stopping: AtomicBool,
    /// Milliseconds (on the shared clock) after which a drain force-closes
    /// lingering connections; `u64::MAX` until a drain starts.
    pub drain_deadline_ms: AtomicU64,
    /// Epoch of the shared millisecond clock.
    pub start: Instant,
    /// Bound ingestion address, for the drain wake-up connection.
    pub ingest_addr: SocketAddr,
}

impl ServerShared {
    /// Milliseconds since server start — the clock every middleware and
    /// timeout decision uses.
    pub fn now_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Whether a drain is past its grace period.
    pub fn past_drain_deadline(&self, now_ms: u64) -> bool {
        now_ms >= self.drain_deadline_ms.load(Ordering::Acquire)
    }
}

/// The server: a namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Binds the three listeners, builds the engine session with the
    /// given initial queries, and spawns the feed, accept, HTTP, and
    /// control threads. Returns once the server is ready to accept
    /// clients.
    pub fn start(
        cfg: ServerConfig,
        schema: Schema,
        queries: Vec<(TenantId, Arc<Query>)>,
    ) -> Result<ServerHandle, ServerError> {
        if cfg.credit_window == 0 {
            return Err(ServerError::Config("credit window must be positive".into()));
        }
        if cfg.feed_queue == 0 {
            return Err(ServerError::Config("feed queue must be positive".into()));
        }
        let ingest_listener = TcpListener::bind(cfg.ingest_addr)?;
        let http_listener = TcpListener::bind(cfg.http_addr)?;
        let control_listener = TcpListener::bind(cfg.control_addr)?;
        let ingest_addr = ingest_listener.local_addr()?;
        let http_addr = http_listener.local_addr()?;
        let control_addr = control_listener.local_addr()?;

        let mut builder = SpectreEngine::multi_builder();
        for (tenant, query) in &queries {
            builder.add_query_for(*tenant, query);
        }
        for (tenant, quota) in &cfg.quotas {
            builder.set_quota(*tenant, quota.clone());
        }
        let builder = builder.config(cfg.engine.clone());
        let builder = if cfg.threaded {
            builder.threaded()
        } else {
            builder.simulated()
        };
        let engine = builder.try_build()?;

        let counters = Arc::new(ServerCounters::default());
        let stack = MiddlewareStack::standard(
            cfg.rate_limit.clone(),
            u64::try_from(cfg.idle_timeout.as_millis()).unwrap_or(u64::MAX),
            Arc::clone(&counters),
        );
        let shared = Arc::new(ServerShared {
            cfg: RuntimeCfg {
                order: cfg.order,
                credit_window: cfg.credit_window,
                read_tick: cfg.read_tick,
                publish_every: cfg.publish_every,
                chaos_panic_tenant: cfg.chaos_panic_tenant,
                drain_grace: cfg.drain_grace,
            },
            counters,
            stack,
            stats: StatsSlot::default(),
            accepting: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            drain_deadline_ms: AtomicU64::new(u64::MAX),
            start: Instant::now(),
            ingest_addr,
        });

        let (tx, rx) = sync_channel::<Msg>(cfg.feed_queue);
        let feed = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("spectre-feed".into())
                .spawn(move || feed::feed_loop(engine, schema, rx, shared))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("spectre-accept".into())
                .spawn(move || listener::accept_loop(ingest_listener, shared, tx))?
        };
        let http = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("spectre-http".into())
                .spawn(move || http::http_loop(http_listener, shared))?
        };
        let control = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("spectre-control".into())
                .spawn(move || control::control_loop(control_listener, shared, tx))?
        };
        Ok(ServerHandle {
            shared,
            tx: Some(tx),
            feed: Some(feed),
            accept: Some(accept),
            http: Some(http),
            control: Some(control),
            ingest_addr,
            http_addr,
            control_addr,
        })
    }
}

/// Starts the graceful drain: refuse new connections, arm the grace
/// deadline, tell the feed thread to finish once the open connections are
/// gone. Idempotent.
pub(crate) fn initiate_drain(shared: &Arc<ServerShared>, tx: &SyncSender<Msg>) {
    if shared.draining.swap(true, Ordering::AcqRel) {
        return;
    }
    shared.accepting.store(false, Ordering::Release);
    let grace = u64::try_from(shared.cfg.drain_grace.as_millis()).unwrap_or(u64::MAX);
    shared
        .drain_deadline_ms
        .store(shared.now_ms().saturating_add(grace), Ordering::Release);
    // Wake the accept loop out of its blocking accept; the dummy
    // connection is refused because `accepting` is already false.
    let _ = TcpStream::connect(shared.ingest_addr);
    let _ = tx.send(Msg::Drain);
}

/// A running server. Dropping the handle without [`join`](Self::join)
/// abandons the session (threads stop on a best-effort basis).
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    tx: Option<SyncSender<Msg>>,
    feed: Option<JoinHandle<Result<ServerOutcome, ServerError>>>,
    accept: Option<JoinHandle<()>>,
    http: Option<JoinHandle<()>>,
    control: Option<JoinHandle<()>>,
    ingest_addr: SocketAddr,
    http_addr: SocketAddr,
    control_addr: SocketAddr,
}

impl ServerHandle {
    /// The bound ingestion address.
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// The bound metrics/health HTTP address.
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// The bound control-socket address.
    pub fn control_addr(&self) -> SocketAddr {
        self.control_addr
    }

    /// The live server front-end counters.
    pub fn counters(&self) -> Arc<ServerCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// Whether the session has finished (the final report is published).
    pub fn is_finished(&self) -> bool {
        self.shared.stats.read().finished
    }

    /// Starts the graceful drain (idempotent; also triggered by the
    /// control command `DRAIN`).
    pub fn drain(&self) {
        if let Some(tx) = &self.tx {
            initiate_drain(&self.shared, tx);
        }
    }

    /// Drains (if not already draining) and waits for the session to
    /// finish, returning the final outcome.
    pub fn join(mut self) -> Result<ServerOutcome, ServerError> {
        self.drain();
        let outcome = match self.feed.take() {
            Some(feed) => match feed.join() {
                Ok(outcome) => outcome,
                Err(_) => Err(ServerError::Control("the feed thread panicked".into())),
            },
            None => Err(ServerError::Control("already joined".into())),
        };
        self.shutdown_aux();
        outcome
    }

    /// Stops the accept/http/control loops and joins their threads.
    fn shutdown_aux(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.accepting.store(false, Ordering::Release);
        // The feed channel must die so lingering control roundtrips fail
        // fast instead of timing out.
        drop(self.tx.take());
        // Wake each blocking accept with a dummy connection.
        let _ = TcpStream::connect(self.ingest_addr);
        let _ = TcpStream::connect(self.http_addr);
        let _ = TcpStream::connect(self.control_addr);
        for handle in [self.accept.take(), self.http.take(), self.control.take()]
            .into_iter()
            .flatten()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.feed.is_some() {
            // Abandoned without join: unblock the threads so the process
            // can exit. The feed thread ends when the channel closes.
            self.shared.draining.store(true, Ordering::Release);
            self.shutdown_aux();
            if let Some(feed) = self.feed.take() {
                let _ = feed.join();
            }
        }
    }
}
