//! The accept loop: thread per connection, panics contained.
//!
//! Every connection handler runs under `catch_unwind` inside its own
//! thread — a panicking connection (a decode bug, a poisoned middleware,
//! the chaos hook) is caught, reported to the panic layer, and closed
//! abnormally; the accept loop and every other connection continue
//! untouched.

use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

use crate::conn::serve_conn;
use crate::feed::{ConnGate, Msg};
use crate::middleware::ConnInfo;
use crate::ServerShared;

/// Accepts connections until draining starts. Connection threads outlive
/// the loop; the feed thread tracks them through `Opened`/`Closed`
/// messages.
pub(crate) fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>, tx: SyncSender<Msg>) {
    let mut next_id = 0u64;
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if !shared.accepting.load(Ordering::Acquire) {
                    // Drain started: refuse (the wake-up dummy connection
                    // lands here too) and stop accepting.
                    break;
                }
                let id = next_id;
                next_id += 1;
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let conn = ConnInfo::new(id, peer, shared.now_ms());
                    let gate = Arc::new(ConnGate::default());
                    if tx
                        .send(Msg::Opened {
                            conn: id,
                            gate: Arc::clone(&gate),
                        })
                        .is_err()
                    {
                        return;
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        serve_conn(&stream, &conn, &gate, &shared, &tx)
                    }));
                    let clean = match result {
                        Ok(clean) => clean,
                        Err(_) => {
                            shared.stack.on_panic(&conn);
                            false
                        }
                    };
                    shared.stack.on_close(&conn, clean);
                    let _ = tx.send(Msg::Closed { conn: id, clean });
                });
            }
            Err(_) => {
                if !shared.accepting.load(Ordering::Acquire) {
                    break;
                }
                // Transient accept error; keep serving.
            }
        }
    }
}
