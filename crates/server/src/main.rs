//! `spectre-server` — a standing SPECTRE ingestion server.
//!
//! Binds the ingestion, metrics, and control sockets, hosts one engine
//! session, and runs until a `DRAIN` control command or a SIGINT/SIGTERM
//! starts the graceful drain. The final report prints to stdout as one
//! JSON line (and to `--report PATH` when given).
//!
//! ```text
//! spectre-server [--listen ADDR] [--http ADDR] [--control ADDR]
//!                [--instances K] [--threaded] [--order seq|arrival]
//!                [--credit N] [--rate-limit EPS[,BURST][,drop|throttle]]
//!                [--idle-timeout-ms N]
//!                [--q1 Q,WS,rising|falling[,TENANT]]...
//!                [--query TEXT]... [--report PATH]
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spectre_core::TenantId;
use spectre_events::Schema;
use spectre_query::parser::parse_query;
use spectre_query::queries::{self, Direction, StockVocab};
use spectre_query::Query;
use spectre_server::{IngestOrder, OverLimitPolicy, RateLimitConfig, Server, ServerConfig};

/// Set by the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    /// libc `signal(2)` — the only platform call the binary needs, so the
    /// full libc crate stays out of the dependency tree.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` only stores to an atomic, which is
    // async-signal-safe; the handler pointer outlives the process.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

struct Args {
    cfg: ServerConfig,
    queries: Vec<(TenantId, Arc<Query>)>,
    report_path: Option<String>,
}

fn parse_args(schema: &mut Schema) -> Result<Args, String> {
    let mut cfg = ServerConfig::default();
    let mut queries: Vec<(TenantId, Arc<Query>)> = Vec::new();
    let mut report_path = None;
    let mut argv = std::env::args().skip(1);
    let parse_addr = |v: String| -> Result<SocketAddr, String> {
        v.parse().map_err(|_| format!("bad address {v:?}"))
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => cfg.ingest_addr = parse_addr(value("--listen")?)?,
            "--http" => cfg.http_addr = parse_addr(value("--http")?)?,
            "--control" => cfg.control_addr = parse_addr(value("--control")?)?,
            "--instances" => {
                cfg.engine.instances = value("--instances")?
                    .parse()
                    .map_err(|_| "bad --instances".to_string())?;
            }
            "--threaded" => cfg.threaded = true,
            "--order" => {
                cfg.order = match value("--order")?.as_str() {
                    "seq" => IngestOrder::Seq,
                    "arrival" => IngestOrder::Arrival,
                    other => return Err(format!("bad --order {other:?} (seq|arrival)")),
                };
            }
            "--credit" => {
                cfg.credit_window = value("--credit")?
                    .parse()
                    .map_err(|_| "bad --credit".to_string())?;
            }
            "--rate-limit" => cfg.rate_limit = Some(parse_rate_limit(&value("--rate-limit")?)?),
            "--idle-timeout-ms" => {
                cfg.idle_timeout = Duration::from_millis(
                    value("--idle-timeout-ms")?
                        .parse()
                        .map_err(|_| "bad --idle-timeout-ms".to_string())?,
                );
            }
            "--q1" => {
                let (tenant, query) = parse_q1(&value("--q1")?, schema)?;
                queries.push((tenant, Arc::new(query)));
            }
            "--query" => {
                let text = value("--query")?;
                let query = parse_query(&text, schema).map_err(|e| format!("bad --query: {e}"))?;
                queries.push((TenantId::DEFAULT, Arc::new(query)));
            }
            "--report" => report_path = Some(value("--report")?),
            "--help" | "-h" => return Err("see the crate docs for usage".into()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if queries.is_empty() {
        // A server with nothing deployed is still useful: queries can be
        // DEPLOYed over the control socket. Default to the paper's Q1 so
        // the common case needs no flags at all.
        queries.push((
            TenantId::DEFAULT,
            Arc::new(queries::q1(schema, 2, 2000, Direction::Rising)),
        ));
    }
    Ok(Args {
        cfg,
        queries,
        report_path,
    })
}

/// `EPS[,BURST][,drop|throttle]`
fn parse_rate_limit(spec: &str) -> Result<RateLimitConfig, String> {
    let mut eps = None;
    let mut burst = None;
    let mut policy = OverLimitPolicy::Throttle;
    for part in spec.split(',') {
        match part {
            "drop" => policy = OverLimitPolicy::Drop,
            "throttle" => policy = OverLimitPolicy::Throttle,
            num => {
                let v: f64 = num
                    .parse()
                    .map_err(|_| format!("bad rate-limit number {num:?}"))?;
                if eps.is_none() {
                    eps = Some(v);
                } else {
                    burst = Some(v);
                }
            }
        }
    }
    let eps = eps.ok_or("usage: --rate-limit EPS[,BURST][,drop|throttle]")?;
    Ok(RateLimitConfig::per_conn(
        eps,
        burst.unwrap_or(eps.max(1.0)),
        policy,
    ))
}

/// `Q,WS,rising|falling[,TENANT]`
fn parse_q1(spec: &str, schema: &mut Schema) -> Result<(TenantId, Query), String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() < 3 || parts.len() > 4 {
        return Err("usage: --q1 Q,WS,rising|falling[,TENANT]".into());
    }
    let q: usize = parts[0].parse().map_err(|_| "bad Q".to_string())?;
    let ws: u64 = parts[1].parse().map_err(|_| "bad WS".to_string())?;
    let direction = match parts[2] {
        "rising" | "up" => Direction::Rising,
        "falling" | "down" => Direction::Falling,
        other => return Err(format!("bad direction {other:?}")),
    };
    let tenant = match parts.get(3) {
        Some(t) => TenantId(t.parse().map_err(|_| "bad tenant".to_string())?),
        None => TenantId::DEFAULT,
    };
    Ok((tenant, queries::q1(schema, q, ws, direction)))
}

fn main() -> ExitCode {
    let mut schema = Schema::new();
    StockVocab::install(&mut schema);
    let args = match parse_args(&mut schema) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("spectre-server: {msg}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers();
    let handle = match Server::start(args.cfg, schema, args.queries) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("spectre-server: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The READY banner is machine-readable: the smoke harness parses the
    // addresses off it.
    println!("LISTEN {}", handle.ingest_addr());
    println!("HTTP {}", handle.http_addr());
    println!("CONTROL {}", handle.control_addr());
    println!("READY");
    while !SHUTDOWN.load(Ordering::SeqCst) && !handle.is_finished() {
        std::thread::sleep(Duration::from_millis(100));
    }
    handle.drain();
    match handle.join() {
        Ok(outcome) => {
            println!("{}", outcome.summary_json);
            if let Some(path) = args.report_path {
                if let Err(e) = std::fs::write(&path, &outcome.summary_json) {
                    eprintln!("spectre-server: failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("spectre-server: drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}
