//! Traffic-counting layer — innermost, so it observes exactly the frames
//! the outer layers let through.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use spectre_events::codec::ClientFrame;
use spectre_events::StreamItem;

use super::{ConnInfo, ConnMiddleware, Decision, LayerKind};
use crate::stats::ServerCounters;

/// Counts connections and admitted frames into the shared server
/// counters (and the per-connection tallies on [`ConnInfo`]).
#[derive(Debug)]
pub struct MetricsLayer {
    counters: Arc<ServerCounters>,
}

impl MetricsLayer {
    /// A metrics layer reporting into the shared server counters.
    pub fn new(counters: Arc<ServerCounters>) -> MetricsLayer {
        MetricsLayer { counters }
    }
}

impl ConnMiddleware for MetricsLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Metrics
    }

    fn on_accept(&self, _conn: &ConnInfo) -> Decision {
        ServerCounters::bump(&self.counters.accepted);
        ServerCounters::bump(&self.counters.active);
        Decision::Forward
    }

    fn on_frame(&self, conn: &ConnInfo, frame: &ClientFrame, _now_ms: u64) -> Decision {
        ServerCounters::bump(&self.counters.frames);
        conn.frames.fetch_add(1, Ordering::Relaxed);
        match frame {
            ClientFrame::Item(StreamItem::Event(_)) => {
                ServerCounters::bump(&self.counters.events);
                conn.events.fetch_add(1, Ordering::Relaxed);
            }
            ClientFrame::Item(StreamItem::Watermark(_)) => {
                ServerCounters::bump(&self.counters.watermarks);
            }
            ClientFrame::Hello(_) | ClientFrame::Bye => {}
        }
        Decision::Forward
    }

    fn on_close(&self, _conn: &ConnInfo, clean: bool) {
        self.counters.active.fetch_sub(1, Ordering::Relaxed);
        if clean {
            ServerCounters::bump(&self.counters.closed_clean);
        } else {
            ServerCounters::bump(&self.counters.closed_abnormal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::test_conn;
    use spectre_events::{Event, EventType};

    #[test]
    fn admitted_traffic_is_tallied() {
        let counters = Arc::new(ServerCounters::default());
        let layer = MetricsLayer::new(Arc::clone(&counters));
        let conn = test_conn(1);
        layer.on_accept(&conn);
        let ev = ClientFrame::Item(StreamItem::Event(
            Event::builder(EventType::new(0)).seq(0).ts(0).build(),
        ));
        layer.on_frame(&conn, &ev, 0);
        layer.on_frame(&conn, &ClientFrame::Item(StreamItem::Watermark(5)), 0);
        layer.on_frame(&conn, &ClientFrame::Bye, 0);
        layer.on_close(&conn, true);
        assert_eq!(ServerCounters::get(&counters.accepted), 1);
        assert_eq!(ServerCounters::get(&counters.active), 0);
        assert_eq!(ServerCounters::get(&counters.frames), 3);
        assert_eq!(ServerCounters::get(&counters.events), 1);
        assert_eq!(ServerCounters::get(&counters.watermarks), 1);
        assert_eq!(ServerCounters::get(&counters.closed_clean), 1);
        assert_eq!(conn.events.load(Ordering::Relaxed), 1);
    }
}
