//! The ordered per-connection middleware chain.
//!
//! Every connection is wrapped in one [`MiddlewareStack`] — a fixed
//! sequence of [`ConnMiddleware`] layers that see the connection's
//! lifecycle (`on_accept` / `on_frame` / `on_tick` / `on_close` /
//! `on_panic`) in declared order and short-circuit on the first
//! non-[`Forward`](Decision::Forward) decision. The canonical order is
//! declared in exactly one place ([`LayerKind::rank`]) and validated at
//! construction: panic isolation outermost, then rate limiting, then
//! timeouts, then metrics — the conventional HTTP-middleware ordering
//! (panics must be caught around everything; a rate-limited frame must not
//! reset the idle timer or count as served traffic). A stack declared out
//! of rank order, or with a duplicated layer, is a configuration error,
//! not a silently reordered chain.

mod metrics;
mod panic;
mod rate_limit;
mod timeout;

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use spectre_events::codec::ClientFrame;

use crate::error::ServerError;
use crate::stats::ServerCounters;

pub use metrics::MetricsLayer;
pub use panic::PanicLayer;
pub use rate_limit::{OverLimitPolicy, RateLimitConfig, RateLimitLayer, TokenBucket};
pub use timeout::TimeoutLayer;

/// Per-connection identity and activity state the layers observe. The
/// mutable fields are atomics because the connection thread updates them
/// while layers (held behind `&self`) read them.
#[derive(Debug)]
pub struct ConnInfo {
    /// Server-assigned connection id (dense accept order).
    pub id: u64,
    /// The client's socket address.
    pub peer: SocketAddr,
    /// Tenant declared by the connection's `HELLO` frame
    /// (`TenantId::DEFAULT` until one arrives).
    tenant: AtomicU32,
    /// Milliseconds (on the server's monotonic clock) of the last frame.
    last_activity_ms: AtomicU64,
    /// Client frames seen on this connection.
    pub frames: AtomicU64,
    /// Event frames forwarded on this connection.
    pub events: AtomicU64,
}

impl ConnInfo {
    /// A fresh connection record, last active "now".
    pub fn new(id: u64, peer: SocketAddr, now_ms: u64) -> ConnInfo {
        ConnInfo {
            id,
            peer,
            tenant: AtomicU32::new(0),
            last_activity_ms: AtomicU64::new(now_ms),
            frames: AtomicU64::new(0),
            events: AtomicU64::new(0),
        }
    }

    /// The connection's declared tenant (raw id; 0 is the default tenant).
    pub fn tenant(&self) -> u32 {
        self.tenant.load(Ordering::Relaxed)
    }

    /// Records the tenant from a `HELLO` frame.
    pub fn set_tenant(&self, tenant: u32) {
        self.tenant.store(tenant, Ordering::Relaxed);
    }

    /// Marks activity at `now_ms` (resets the idle clock).
    pub fn touch(&self, now_ms: u64) {
        self.last_activity_ms.store(now_ms, Ordering::Relaxed);
    }

    /// Milliseconds since the last activity, saturating.
    pub fn idle_for(&self, now_ms: u64) -> u64 {
        now_ms.saturating_sub(self.last_activity_ms.load(Ordering::Relaxed))
    }
}

/// A layer's verdict on a connection event. The stack short-circuits on
/// the first non-`Forward` decision, so an inner layer never sees what an
/// outer layer rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Pass the frame (or connection) on to the next layer.
    Forward,
    /// Discard this frame; the connection stays open.
    Drop,
    /// Forward the frame but advise the client to pause for the given
    /// number of nanoseconds (sent as a throttle frame).
    Throttle(u64),
    /// Close the connection (abnormally).
    Close,
}

/// The canonical middleware layers, in their only legal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Panic isolation — must be outermost so it wraps everything.
    Panic,
    /// Token-bucket rate limiting.
    RateLimit,
    /// Idle/read timeouts.
    Timeout,
    /// Per-connection and aggregate traffic counters — innermost, so it
    /// counts only what the outer layers let through.
    Metrics,
}

impl LayerKind {
    /// The layer's position in the canonical order (strictly increasing
    /// through a valid stack). Declared here and nowhere else.
    pub fn rank(self) -> u8 {
        match self {
            LayerKind::Panic => 0,
            LayerKind::RateLimit => 1,
            LayerKind::Timeout => 2,
            LayerKind::Metrics => 3,
        }
    }

    /// Stable name used in logs and `/metrics` labels.
    pub fn name(self) -> &'static str {
        match self {
            LayerKind::Panic => "panic",
            LayerKind::RateLimit => "rate_limit",
            LayerKind::Timeout => "timeout",
            LayerKind::Metrics => "metrics",
        }
    }
}

/// One layer of the per-connection middleware chain. All hooks default to
/// no-ops so a layer implements only what it observes. Layers are shared
/// across connection threads: `&self` plus interior atomics.
pub trait ConnMiddleware: Send + Sync {
    /// Which canonical layer this is (fixes its place in the order).
    fn kind(&self) -> LayerKind;

    /// A connection was accepted. `Close` refuses it.
    fn on_accept(&self, _conn: &ConnInfo) -> Decision {
        Decision::Forward
    }

    /// A client frame arrived (before it is forwarded to the feed).
    fn on_frame(&self, _conn: &ConnInfo, _frame: &ClientFrame, _now_ms: u64) -> Decision {
        Decision::Forward
    }

    /// The read loop's periodic tick fired with no frame (read timeout).
    fn on_tick(&self, _conn: &ConnInfo, _now_ms: u64) -> Decision {
        Decision::Forward
    }

    /// The connection ended; `clean` means a `BYE` frame preceded EOF.
    fn on_close(&self, _conn: &ConnInfo, _clean: bool) {}

    /// The connection's thread panicked (already caught by the listener).
    fn on_panic(&self, _conn: &ConnInfo) {}
}

/// Per-layer outcome counters, exported on `/metrics`.
#[derive(Debug, Default)]
pub struct LayerCounters {
    /// Frames this layer passed through.
    pub forwarded: AtomicU64,
    /// Frames this layer discarded.
    pub dropped: AtomicU64,
    /// Frames this layer throttled (forwarded with a pause advisory).
    pub throttled: AtomicU64,
    /// Connections this layer closed.
    pub closed: AtomicU64,
}

/// The validated, ordered chain of layers a server runs every connection
/// through.
pub struct MiddlewareStack {
    layers: Vec<Arc<dyn ConnMiddleware>>,
    counters: Vec<LayerCounters>,
}

impl std::fmt::Debug for MiddlewareStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self.layers.iter().map(|l| l.kind().name()).collect();
        f.debug_struct("MiddlewareStack")
            .field("layers", &names)
            .finish()
    }
}

impl MiddlewareStack {
    /// Builds a stack from layers, validating the declared order: ranks
    /// must be strictly increasing (the canonical order, no duplicates).
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] naming the two conflicting layers.
    pub fn new(layers: Vec<Arc<dyn ConnMiddleware>>) -> Result<MiddlewareStack, ServerError> {
        for pair in layers.windows(2) {
            let (a, b) = (pair[0].kind(), pair[1].kind());
            if a.rank() >= b.rank() {
                let relation = if a.rank() == b.rank() {
                    "duplicates"
                } else {
                    "must come after"
                };
                return Err(ServerError::Config(format!(
                    "middleware conflict: layer {:?} {relation} layer {:?} \
                     (canonical order: panic < rate_limit < timeout < metrics)",
                    b.name(),
                    a.name(),
                )));
            }
        }
        let counters = layers.iter().map(|_| LayerCounters::default()).collect();
        Ok(MiddlewareStack { layers, counters })
    }

    /// The standard stack: panic isolation, optional rate limiting, idle
    /// timeout, metrics — in that order.
    pub fn standard(
        rate: Option<RateLimitConfig>,
        idle_timeout_ms: u64,
        counters: Arc<ServerCounters>,
    ) -> MiddlewareStack {
        let mut layers: Vec<Arc<dyn ConnMiddleware>> =
            vec![Arc::new(PanicLayer::new(Arc::clone(&counters)))];
        if let Some(cfg) = rate {
            layers.push(Arc::new(RateLimitLayer::new(cfg, Arc::clone(&counters))));
        }
        layers.push(Arc::new(TimeoutLayer::new(
            idle_timeout_ms,
            Arc::clone(&counters),
        )));
        layers.push(Arc::new(MetricsLayer::new(counters)));
        MiddlewareStack::new(layers).expect("the standard stack is ordered by construction")
    }

    /// Runs `on_accept` through the chain; first non-forward wins.
    pub fn on_accept(&self, conn: &ConnInfo) -> Decision {
        for (layer, counters) in self.layers.iter().zip(&self.counters) {
            let d = layer.on_accept(conn);
            if d != Decision::Forward {
                ServerCounters::bump(&counters.closed);
                return d;
            }
        }
        Decision::Forward
    }

    /// Runs `on_frame` through the chain; first non-forward wins (a
    /// `Throttle` still forwards, so the chain continues past it and the
    /// largest requested pause is reported).
    pub fn on_frame(&self, conn: &ConnInfo, frame: &ClientFrame, now_ms: u64) -> Decision {
        let mut pause = None::<u64>;
        for (layer, counters) in self.layers.iter().zip(&self.counters) {
            match layer.on_frame(conn, frame, now_ms) {
                Decision::Forward => ServerCounters::bump(&counters.forwarded),
                Decision::Drop => {
                    ServerCounters::bump(&counters.dropped);
                    return Decision::Drop;
                }
                Decision::Throttle(nanos) => {
                    ServerCounters::bump(&counters.throttled);
                    pause = Some(pause.unwrap_or(0).max(nanos));
                }
                Decision::Close => {
                    ServerCounters::bump(&counters.closed);
                    return Decision::Close;
                }
            }
        }
        match pause {
            Some(nanos) => Decision::Throttle(nanos),
            None => Decision::Forward,
        }
    }

    /// Runs the periodic tick through the chain.
    pub fn on_tick(&self, conn: &ConnInfo, now_ms: u64) -> Decision {
        for (layer, counters) in self.layers.iter().zip(&self.counters) {
            let d = layer.on_tick(conn, now_ms);
            if d == Decision::Close {
                ServerCounters::bump(&counters.closed);
                return d;
            }
        }
        Decision::Forward
    }

    /// Notifies every layer of the connection's end.
    pub fn on_close(&self, conn: &ConnInfo, clean: bool) {
        for layer in &self.layers {
            layer.on_close(conn, clean);
        }
    }

    /// Notifies every layer of a caught connection panic.
    pub fn on_panic(&self, conn: &ConnInfo) {
        for layer in &self.layers {
            layer.on_panic(conn);
        }
    }

    /// Per-layer outcome counters as `(name, forwarded, dropped,
    /// throttled, closed)` rows for `/metrics`.
    pub fn layer_counters(&self) -> Vec<(&'static str, u64, u64, u64, u64)> {
        self.layers
            .iter()
            .zip(&self.counters)
            .map(|(layer, c)| {
                (
                    layer.kind().name(),
                    ServerCounters::get(&c.forwarded),
                    ServerCounters::get(&c.dropped),
                    ServerCounters::get(&c.throttled),
                    ServerCounters::get(&c.closed),
                )
            })
            .collect()
    }
}

#[cfg(test)]
pub(crate) fn test_conn(id: u64) -> ConnInfo {
    ConnInfo::new(id, "127.0.0.1:0".parse().expect("literal addr"), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Bare(LayerKind);
    impl ConnMiddleware for Bare {
        fn kind(&self) -> LayerKind {
            self.0
        }
    }

    fn stack_of(kinds: &[LayerKind]) -> Result<MiddlewareStack, ServerError> {
        MiddlewareStack::new(
            kinds
                .iter()
                .map(|&k| Arc::new(Bare(k)) as Arc<dyn ConnMiddleware>)
                .collect(),
        )
    }

    #[test]
    fn canonical_order_is_accepted() {
        let s = stack_of(&[
            LayerKind::Panic,
            LayerKind::RateLimit,
            LayerKind::Timeout,
            LayerKind::Metrics,
        ])
        .expect("canonical order is valid");
        assert_eq!(s.layer_counters().len(), 4);
        // Subsets keep the order and stay valid.
        stack_of(&[LayerKind::Panic, LayerKind::Metrics]).expect("subset is valid");
    }

    #[test]
    fn out_of_order_layers_conflict() {
        let err = stack_of(&[LayerKind::RateLimit, LayerKind::Panic]).unwrap_err();
        assert!(err.to_string().contains("middleware conflict"), "{err}");
        assert!(err.to_string().contains("must come after"), "{err}");
    }

    #[test]
    fn duplicate_layers_conflict() {
        let err = stack_of(&[LayerKind::Timeout, LayerKind::Timeout]).unwrap_err();
        assert!(err.to_string().contains("duplicates"), "{err}");
    }

    #[test]
    fn first_non_forward_decision_wins() {
        struct Dropper;
        impl ConnMiddleware for Dropper {
            fn kind(&self) -> LayerKind {
                LayerKind::RateLimit
            }
            fn on_frame(&self, _: &ConnInfo, _: &ClientFrame, _: u64) -> Decision {
                Decision::Drop
            }
        }
        struct Closer;
        impl ConnMiddleware for Closer {
            fn kind(&self) -> LayerKind {
                LayerKind::Timeout
            }
            fn on_frame(&self, _: &ConnInfo, _: &ClientFrame, _: u64) -> Decision {
                Decision::Close
            }
        }
        let stack = MiddlewareStack::new(vec![Arc::new(Dropper), Arc::new(Closer)]).unwrap();
        let conn = test_conn(1);
        let frame = ClientFrame::Bye;
        // The dropper runs first and short-circuits: the closer never sees
        // the frame, so the verdict is Drop, not Close.
        assert_eq!(stack.on_frame(&conn, &frame, 0), Decision::Drop);
        let rows = stack.layer_counters();
        assert_eq!(rows[0], ("rate_limit", 0, 1, 0, 0));
        assert_eq!(rows[1], ("timeout", 0, 0, 0, 0));
    }
}
