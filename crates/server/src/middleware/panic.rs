//! Panic isolation — the outermost layer.
//!
//! The actual containment is mechanical: the listener runs every
//! connection handler under `catch_unwind`, so a poisoned connection can
//! never take down the accept loop or the feed thread. This layer is the
//! stack's record of those events: it counts caught panics and logs the
//! connection they killed.

use std::sync::Arc;

use super::{ConnInfo, ConnMiddleware, LayerKind};
use crate::stats::ServerCounters;

/// Counts and logs connection panics caught by the listener.
#[derive(Debug)]
pub struct PanicLayer {
    counters: Arc<ServerCounters>,
}

impl PanicLayer {
    /// A panic layer reporting into the shared server counters.
    pub fn new(counters: Arc<ServerCounters>) -> PanicLayer {
        PanicLayer { counters }
    }
}

impl ConnMiddleware for PanicLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Panic
    }

    fn on_panic(&self, conn: &ConnInfo) {
        ServerCounters::bump(&self.counters.panics_caught);
        eprintln!(
            "spectre-server: connection {} ({}) panicked; connection dropped, server continues",
            conn.id, conn.peer
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::test_conn;

    #[test]
    fn caught_panics_are_counted() {
        let counters = Arc::new(ServerCounters::default());
        let layer = PanicLayer::new(Arc::clone(&counters));
        let conn = test_conn(3);
        layer.on_panic(&conn);
        layer.on_panic(&conn);
        assert_eq!(ServerCounters::get(&counters.panics_caught), 2);
    }
}
