//! Token-bucket rate limiting, per connection and per tenant.
//!
//! Each connection gets its own bucket; connections declaring the same
//! tenant additionally share a per-tenant bucket, so one tenant cannot
//! exceed its aggregate budget by opening many connections. Over-limit
//! event frames are either dropped or forwarded with a throttle advisory,
//! per [`OverLimitPolicy`]. Only event frames spend tokens — watermarks,
//! hello and bye are control traffic and always pass.
//!
//! Time enters as caller-supplied milliseconds (the server's monotonic
//! clock), which makes the bucket arithmetic deterministic under test.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use spectre_events::codec::ClientFrame;
use spectre_events::StreamItem;

use super::{ConnInfo, ConnMiddleware, Decision, LayerKind};
use crate::stats::ServerCounters;

/// What to do with an event frame that exceeds the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverLimitPolicy {
    /// Forward the frame but send the client a throttle advisory sized to
    /// when the next token becomes available.
    Throttle,
    /// Discard the frame (it still consumed no token).
    Drop,
}

/// Rate-limiter configuration.
#[derive(Debug, Clone)]
pub struct RateLimitConfig {
    /// Budget per connection, in events per second.
    pub per_conn_eps: f64,
    /// Aggregate budget per tenant, in events per second (`None` disables
    /// the tenant dimension).
    pub per_tenant_eps: Option<f64>,
    /// Burst capacity, in events (bucket size); applies to both
    /// dimensions.
    pub burst: f64,
    /// Over-limit policy.
    pub policy: OverLimitPolicy,
}

impl RateLimitConfig {
    /// A per-connection limit of `eps` events/s with a burst of `burst`
    /// events and the given policy; no tenant dimension.
    pub fn per_conn(eps: f64, burst: f64, policy: OverLimitPolicy) -> RateLimitConfig {
        RateLimitConfig {
            per_conn_eps: eps,
            per_tenant_eps: None,
            burst,
            policy,
        }
    }
}

/// A classic token bucket over caller-supplied millisecond time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    per_ms: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// A bucket refilling at `eps` tokens/second, holding at most `burst`,
    /// starting full at time `now_ms`.
    pub fn new(eps: f64, burst: f64, now_ms: u64) -> TokenBucket {
        TokenBucket {
            capacity: burst,
            tokens: burst,
            per_ms: eps / 1000.0,
            last_ms: now_ms,
        }
    }

    /// Attempts to take one token at `now_ms`. On refusal returns the
    /// nanoseconds until a token will be available.
    ///
    /// # Errors
    ///
    /// `Err(wait_nanos)` when the bucket is empty.
    pub fn try_take(&mut self, now_ms: u64) -> Result<(), u64> {
        let elapsed = now_ms.saturating_sub(self.last_ms);
        self.last_ms = now_ms;
        self.tokens = (self.tokens + elapsed as f64 * self.per_ms).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            let wait_ms = if self.per_ms > 0.0 {
                deficit / self.per_ms
            } else {
                1000.0
            };
            Err((wait_ms * 1_000_000.0) as u64)
        }
    }
}

/// The rate-limiting layer: per-connection buckets plus optional shared
/// per-tenant buckets.
#[derive(Debug)]
pub struct RateLimitLayer {
    cfg: RateLimitConfig,
    counters: Arc<ServerCounters>,
    conns: Mutex<HashMap<u64, TokenBucket>>,
    tenants: Mutex<HashMap<u32, TokenBucket>>,
}

impl RateLimitLayer {
    /// A layer enforcing `cfg`, reporting into the shared counters.
    pub fn new(cfg: RateLimitConfig, counters: Arc<ServerCounters>) -> RateLimitLayer {
        RateLimitLayer {
            cfg,
            counters,
            conns: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Takes from the connection bucket, then (only if that succeeded)
    /// from the tenant bucket. Returns the wait hint on refusal.
    fn take(&self, conn: &ConnInfo, now_ms: u64) -> Result<(), u64> {
        {
            let mut conns = self.conns.lock().expect("rate limiter poisoned");
            conns
                .entry(conn.id)
                .or_insert_with(|| TokenBucket::new(self.cfg.per_conn_eps, self.cfg.burst, now_ms))
                .try_take(now_ms)?;
        }
        if let Some(tenant_eps) = self.cfg.per_tenant_eps {
            let mut tenants = self.tenants.lock().expect("rate limiter poisoned");
            tenants
                .entry(conn.tenant())
                .or_insert_with(|| TokenBucket::new(tenant_eps, self.cfg.burst, now_ms))
                .try_take(now_ms)?;
        }
        Ok(())
    }
}

impl ConnMiddleware for RateLimitLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::RateLimit
    }

    fn on_frame(&self, conn: &ConnInfo, frame: &ClientFrame, now_ms: u64) -> Decision {
        if !matches!(frame, ClientFrame::Item(StreamItem::Event(_))) {
            return Decision::Forward;
        }
        match self.take(conn, now_ms) {
            Ok(()) => Decision::Forward,
            Err(wait_nanos) => match self.cfg.policy {
                OverLimitPolicy::Throttle => {
                    ServerCounters::bump(&self.counters.rate_throttled);
                    Decision::Throttle(wait_nanos)
                }
                OverLimitPolicy::Drop => {
                    ServerCounters::bump(&self.counters.rate_dropped);
                    Decision::Drop
                }
            },
        }
    }

    fn on_close(&self, conn: &ConnInfo, _clean: bool) {
        self.conns
            .lock()
            .expect("rate limiter poisoned")
            .remove(&conn.id);
        // Tenant buckets survive their connections: the aggregate budget
        // is per tenant, not per connection set.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::test_conn;
    use spectre_events::{Event, EventType};

    fn event_frame(seq: u64) -> ClientFrame {
        ClientFrame::Item(StreamItem::Event(
            Event::builder(EventType::new(0)).seq(seq).ts(seq).build(),
        ))
    }

    #[test]
    fn bucket_enforces_budget_exactly_under_synthetic_time() {
        // 100 events/s, burst 10, clock starts at 0: 10 immediate takes
        // succeed, the 11th waits 10ms for the next token.
        let mut bucket = TokenBucket::new(100.0, 10.0, 0);
        for _ in 0..10 {
            bucket.try_take(0).expect("burst capacity");
        }
        let wait = bucket.try_take(0).unwrap_err();
        assert_eq!(wait, 10_000_000, "one token at 100/s is 10ms away");
        // 10ms later exactly one token has refilled.
        bucket.try_take(10).expect("refilled token");
        bucket.try_take(10).unwrap_err();
        // A long idle period refills only to capacity.
        for _ in 0..10 {
            bucket.try_take(100_000).expect("capacity refilled");
        }
        bucket.try_take(100_000).unwrap_err();
    }

    #[test]
    fn over_limit_events_follow_the_policy() {
        for (policy, expect_drop) in [
            (OverLimitPolicy::Drop, true),
            (OverLimitPolicy::Throttle, false),
        ] {
            let counters = Arc::new(ServerCounters::default());
            let layer = RateLimitLayer::new(
                RateLimitConfig::per_conn(1000.0, 2.0, policy),
                Arc::clone(&counters),
            );
            let conn = test_conn(1);
            assert_eq!(layer.on_frame(&conn, &event_frame(0), 0), Decision::Forward);
            assert_eq!(layer.on_frame(&conn, &event_frame(1), 0), Decision::Forward);
            let verdict = layer.on_frame(&conn, &event_frame(2), 0);
            if expect_drop {
                assert_eq!(verdict, Decision::Drop);
                assert_eq!(ServerCounters::get(&counters.rate_dropped), 1);
            } else {
                assert!(
                    matches!(verdict, Decision::Throttle(n) if n > 0),
                    "{verdict:?}"
                );
                assert_eq!(ServerCounters::get(&counters.rate_throttled), 1);
            }
            // Control frames never spend tokens, even with an empty bucket.
            assert_eq!(
                layer.on_frame(&conn, &ClientFrame::Bye, 0),
                Decision::Forward
            );
        }
    }

    #[test]
    fn tenant_bucket_is_shared_across_connections() {
        let counters = Arc::new(ServerCounters::default());
        let cfg = RateLimitConfig {
            per_conn_eps: 1_000_000.0,
            per_tenant_eps: Some(1000.0),
            burst: 3.0,
            policy: OverLimitPolicy::Drop,
        };
        let layer = RateLimitLayer::new(cfg, counters);
        let a = test_conn(1);
        let b = test_conn(2);
        a.set_tenant(7);
        b.set_tenant(7);
        // Two connections of the same tenant drain the one shared bucket.
        assert_eq!(layer.on_frame(&a, &event_frame(0), 0), Decision::Forward);
        assert_eq!(layer.on_frame(&b, &event_frame(1), 0), Decision::Forward);
        assert_eq!(layer.on_frame(&a, &event_frame(2), 0), Decision::Forward);
        assert_eq!(layer.on_frame(&b, &event_frame(3), 0), Decision::Drop);
        // A different tenant has its own budget.
        let c = test_conn(3);
        c.set_tenant(8);
        assert_eq!(layer.on_frame(&c, &event_frame(4), 0), Decision::Forward);
    }
}
