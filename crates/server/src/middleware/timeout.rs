//! Idle-timeout layer: closes connections that stop sending.
//!
//! The connection read loop wakes on a short read timeout and runs the
//! stack's tick hook; this layer compares the connection's last-activity
//! clock against the configured idle budget and closes overdue
//! connections. Activity is any decoded frame (the read loop touches the
//! clock before the chain runs).

use std::sync::Arc;

use super::{ConnInfo, ConnMiddleware, Decision, LayerKind};
use crate::stats::ServerCounters;

/// Closes connections idle for longer than the configured budget.
#[derive(Debug)]
pub struct TimeoutLayer {
    idle_ms: u64,
    counters: Arc<ServerCounters>,
}

impl TimeoutLayer {
    /// A layer closing connections idle for more than `idle_ms`
    /// milliseconds.
    pub fn new(idle_ms: u64, counters: Arc<ServerCounters>) -> TimeoutLayer {
        TimeoutLayer { idle_ms, counters }
    }
}

impl ConnMiddleware for TimeoutLayer {
    fn kind(&self) -> LayerKind {
        LayerKind::Timeout
    }

    fn on_tick(&self, conn: &ConnInfo, now_ms: u64) -> Decision {
        if conn.idle_for(now_ms) > self.idle_ms {
            ServerCounters::bump(&self.counters.idle_closed);
            eprintln!(
                "spectre-server: connection {} ({}) idle for over {}ms, closing",
                conn.id, conn.peer, self.idle_ms
            );
            Decision::Close
        } else {
            Decision::Forward
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::test_conn;

    #[test]
    fn idle_connections_are_closed_after_the_budget() {
        let counters = Arc::new(ServerCounters::default());
        let layer = TimeoutLayer::new(100, Arc::clone(&counters));
        let conn = test_conn(1);
        conn.touch(1000);
        assert_eq!(layer.on_tick(&conn, 1050), Decision::Forward);
        assert_eq!(layer.on_tick(&conn, 1100), Decision::Forward);
        assert_eq!(layer.on_tick(&conn, 1101), Decision::Close);
        assert_eq!(ServerCounters::get(&counters.idle_closed), 1);
        // Fresh activity resets the clock.
        conn.touch(2000);
        assert_eq!(layer.on_tick(&conn, 2100), Decision::Forward);
    }
}
