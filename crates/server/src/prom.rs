//! Prometheus text-exposition rendering of the engine and server metrics.
//!
//! The engine block destructures [`MetricsSnapshot`] exhaustively, so
//! adding a counter to the engine without exporting it here is a compile
//! error, not a silently incomplete scrape.

use std::fmt::Write;

use spectre_core::MetricsSnapshot;

use crate::stats::ServerCounters;
use crate::ServerShared;

fn counter(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
}

fn gauge(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
}

/// Renders the full scrape body from the latest published engine stats
/// plus the live server counters.
pub(crate) fn render(shared: &ServerShared) -> String {
    let stats = shared.stats.read();
    let mut out = String::with_capacity(4096);

    // Engine aggregate: every MetricsSnapshot field, spelled out once.
    let MetricsSnapshot {
        events_processed,
        events_suppressed,
        cgs_created,
        cgs_completed,
        cgs_abandoned,
        versions_created,
        versions_dropped,
        versions_materialized,
        lazy_versions_dropped,
        predictor_refreshes,
        predictor_refresh_nanos,
        rollbacks,
        sched_cycles,
        max_tree_versions,
        windows_retired,
        idle_steps,
        stalled_steps,
        checkpoints_taken,
        checkpoint_restores,
        outputs_emitted,
        store_windows_opened,
        windows_skipped,
        events_reordered,
        late_events_dropped,
        late_events_admitted,
        watermarks_advanced,
    } = stats.snapshot;
    counter(
        &mut out,
        "spectre_engine_events_processed",
        events_processed,
    );
    counter(
        &mut out,
        "spectre_engine_events_suppressed",
        events_suppressed,
    );
    counter(&mut out, "spectre_engine_cgs_created", cgs_created);
    counter(&mut out, "spectre_engine_cgs_completed", cgs_completed);
    counter(&mut out, "spectre_engine_cgs_abandoned", cgs_abandoned);
    counter(
        &mut out,
        "spectre_engine_versions_created",
        versions_created,
    );
    counter(
        &mut out,
        "spectre_engine_versions_dropped",
        versions_dropped,
    );
    counter(
        &mut out,
        "spectre_engine_versions_materialized",
        versions_materialized,
    );
    counter(
        &mut out,
        "spectre_engine_lazy_versions_dropped",
        lazy_versions_dropped,
    );
    counter(
        &mut out,
        "spectre_engine_predictor_refreshes",
        predictor_refreshes,
    );
    counter(
        &mut out,
        "spectre_engine_predictor_refresh_nanos",
        predictor_refresh_nanos,
    );
    counter(&mut out, "spectre_engine_rollbacks", rollbacks);
    counter(&mut out, "spectre_engine_sched_cycles", sched_cycles);
    gauge(
        &mut out,
        "spectre_engine_max_tree_versions",
        max_tree_versions,
    );
    counter(&mut out, "spectre_engine_windows_retired", windows_retired);
    counter(&mut out, "spectre_engine_idle_steps", idle_steps);
    counter(&mut out, "spectre_engine_stalled_steps", stalled_steps);
    counter(
        &mut out,
        "spectre_engine_checkpoints_taken",
        checkpoints_taken,
    );
    counter(
        &mut out,
        "spectre_engine_checkpoint_restores",
        checkpoint_restores,
    );
    counter(&mut out, "spectre_engine_outputs_emitted", outputs_emitted);
    counter(
        &mut out,
        "spectre_engine_store_windows_opened",
        store_windows_opened,
    );
    counter(&mut out, "spectre_engine_windows_skipped", windows_skipped);
    counter(
        &mut out,
        "spectre_engine_events_reordered",
        events_reordered,
    );
    counter(
        &mut out,
        "spectre_engine_late_events_dropped",
        late_events_dropped,
    );
    counter(
        &mut out,
        "spectre_engine_late_events_admitted",
        late_events_admitted,
    );
    counter(
        &mut out,
        "spectre_engine_watermarks_advanced",
        watermarks_advanced,
    );
    counter(&mut out, "spectre_engine_input_events", stats.input_events);
    counter(&mut out, "spectre_engine_complex_events", stats.outputs);
    gauge(
        &mut out,
        "spectre_server_finished",
        u64::from(stats.finished),
    );

    // Per-query and per-tenant shares (the summable headline counters).
    let _ = writeln!(out, "# TYPE spectre_engine_query_events_processed counter");
    for (qid, tenant, m) in &stats.per_query {
        let _ = writeln!(
            out,
            "spectre_engine_query_events_processed{{query=\"{}\",tenant=\"{}\"}} {}",
            qid.0, tenant.0, m.events_processed
        );
    }
    let _ = writeln!(out, "# TYPE spectre_engine_query_outputs_emitted counter");
    for (qid, tenant, m) in &stats.per_query {
        let _ = writeln!(
            out,
            "spectre_engine_query_outputs_emitted{{query=\"{}\",tenant=\"{}\"}} {}",
            qid.0, tenant.0, m.outputs_emitted
        );
    }
    let _ = writeln!(out, "# TYPE spectre_engine_tenant_events_processed counter");
    for (tenant, m) in &stats.tenants {
        let _ = writeln!(
            out,
            "spectre_engine_tenant_events_processed{{tenant=\"{}\"}} {}",
            tenant.0, m.events_processed
        );
    }

    // Server front-end counters.
    let c = &shared.counters;
    counter(
        &mut out,
        "spectre_server_connections_accepted",
        ServerCounters::get(&c.accepted),
    );
    gauge(
        &mut out,
        "spectre_server_connections_active",
        ServerCounters::get(&c.active),
    );
    counter(
        &mut out,
        "spectre_server_connections_closed_clean",
        ServerCounters::get(&c.closed_clean),
    );
    counter(
        &mut out,
        "spectre_server_connections_closed_abnormal",
        ServerCounters::get(&c.closed_abnormal),
    );
    counter(
        &mut out,
        "spectre_server_panics_caught",
        ServerCounters::get(&c.panics_caught),
    );
    counter(
        &mut out,
        "spectre_server_frames",
        ServerCounters::get(&c.frames),
    );
    counter(
        &mut out,
        "spectre_server_events",
        ServerCounters::get(&c.events),
    );
    counter(
        &mut out,
        "spectre_server_watermarks",
        ServerCounters::get(&c.watermarks),
    );
    counter(
        &mut out,
        "spectre_server_rate_limited_dropped",
        ServerCounters::get(&c.rate_dropped),
    );
    counter(
        &mut out,
        "spectre_server_rate_limited_throttled",
        ServerCounters::get(&c.rate_throttled),
    );
    counter(
        &mut out,
        "spectre_server_idle_closed",
        ServerCounters::get(&c.idle_closed),
    );
    counter(
        &mut out,
        "spectre_server_decode_errors",
        ServerCounters::get(&c.decode_errors),
    );
    counter(
        &mut out,
        "spectre_server_credits_granted",
        ServerCounters::get(&c.credits_granted),
    );
    counter(
        &mut out,
        "spectre_server_seq_stale_dropped",
        ServerCounters::get(&c.seq_stale_dropped),
    );
    counter(
        &mut out,
        "spectre_server_seq_gaps_skipped",
        ServerCounters::get(&c.seq_gaps_skipped),
    );

    // Per-middleware-layer outcome counters.
    let _ = writeln!(out, "# TYPE spectre_server_layer_outcomes counter");
    for (layer, forwarded, dropped, throttled, closed) in shared.stack.layer_counters() {
        for (outcome, v) in [
            ("forwarded", forwarded),
            ("dropped", dropped),
            ("throttled", throttled),
            ("closed", closed),
        ] {
            let _ = writeln!(
                out,
                "spectre_server_layer_outcomes{{layer=\"{layer}\",outcome=\"{outcome}\"}} {v}"
            );
        }
    }
    out
}
