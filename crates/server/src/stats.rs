//! Server-side counters and the engine-stats publication slot.
//!
//! The engine lives on the feed thread; everything another thread wants to
//! observe (the `/metrics` endpoint, the control plane's `STATS`) reads a
//! [`PublishedStats`] snapshot the feed thread refreshes on its tick. The
//! connection-layer counters in [`ServerCounters`] are plain atomics
//! bumped in place by the connection threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use spectre_core::{MetricsSnapshot, QueryId, TenantId};

/// Connection- and frame-level counters of the server front-end, exported
/// under `spectre_server_*` on `/metrics`. All relaxed atomics: they are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted by the listener.
    pub accepted: AtomicU64,
    /// Connections currently open.
    pub active: AtomicU64,
    /// Connections that ended with a `BYE` frame (clean end-of-stream).
    pub closed_clean: AtomicU64,
    /// Connections that ended without one — disconnect, error, timeout.
    pub closed_abnormal: AtomicU64,
    /// Connection-thread panics caught by the panic layer.
    pub panics_caught: AtomicU64,
    /// Client frames of any kind decoded.
    pub frames: AtomicU64,
    /// Event frames forwarded to the feed thread.
    pub events: AtomicU64,
    /// Watermark frames forwarded.
    pub watermarks: AtomicU64,
    /// Event frames dropped by the rate limiter.
    pub rate_dropped: AtomicU64,
    /// Throttle frames sent to over-limit clients.
    pub rate_throttled: AtomicU64,
    /// Connections closed by the idle-timeout layer.
    pub idle_closed: AtomicU64,
    /// Frame decode errors (each ends its connection abnormally).
    pub decode_errors: AtomicU64,
    /// Credit grants (in events) sent to clients.
    pub credits_granted: AtomicU64,
    /// Events dropped by the sequencer as duplicates of an already-released
    /// sequence number (seq mode only).
    pub seq_stale_dropped: AtomicU64,
    /// Sequence-number gaps skipped when an abnormal disconnect forced the
    /// sequencer to flush past missing events (seq mode only).
    pub seq_gaps_skipped: AtomicU64,
}

impl ServerCounters {
    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// The engine-side statistics the feed thread publishes for the sidecar
/// endpoints: a consistent-enough snapshot taken between engine calls.
/// After a graceful drain ([`finished`](Self::finished) set) it is exact —
/// the engine has quiesced and the final numbers are frozen here.
#[derive(Debug, Default, Clone)]
pub struct PublishedStats {
    /// Aggregate engine counters.
    pub snapshot: MetricsSnapshot,
    /// Per-query shares with the owning tenant, in deployment order.
    pub per_query: Vec<(QueryId, TenantId, MetricsSnapshot)>,
    /// Per-tenant rollups, in first-deploy order.
    pub tenants: Vec<(TenantId, MetricsSnapshot)>,
    /// Events ingested by the engine so far.
    pub input_events: u64,
    /// Complex events committed (drained by the feed thread) so far.
    pub outputs: u64,
    /// Set once the session finished and the final report exists.
    pub finished: bool,
}

/// Shared slot the feed thread writes and the sidecars read.
#[derive(Debug, Default)]
pub struct StatsSlot(Mutex<PublishedStats>);

impl StatsSlot {
    /// Replaces the published snapshot.
    pub fn publish(&self, stats: PublishedStats) {
        *self.0.lock().expect("stats slot poisoned") = stats;
    }

    /// Clones the latest published snapshot.
    pub fn read(&self) -> PublishedStats {
        self.0.lock().expect("stats slot poisoned").clone()
    }
}
