//! Algorithmic-trading scenario (paper query Q1): detect the first q rising
//! quotes following a rising quote of a blue-chip leader, consuming all
//! constituents — then compare how speculation scales with the
//! consumption-group completion probability.
//!
//! ```sh
//! cargo run --release -p spectre-examples --bin algorithmic_trading
//! ```

use std::sync::Arc;

use spectre_baselines::{run_sequential, run_waitful};
use spectre_core::{SpectreConfig, SpectreEngine};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_query::queries::{self, Direction};

fn main() {
    let ws = 400u64;
    println!("Q1: first q rising quotes within {ws} events of a rising leader quote\n");

    // Small q → high completion probability; large q → low.
    for q in [4usize, 32, 128] {
        let mut schema = Schema::new();
        let events: Vec<_> = NyseGenerator::new(
            NyseConfig {
                symbols: 200,
                leaders: 16,
                events: 20_000,
                seed: 11,
                ..NyseConfig::default()
            },
            &mut schema,
        )
        .collect();
        let query = Arc::new(queries::q1(&mut schema, q, ws, Direction::Rising));

        let seq = run_sequential(&query, &events);
        let sim = |k: usize| {
            SpectreEngine::builder(&query)
                .config(SpectreConfig::with_instances(k))
                .simulated()
                .build()
                .run(events.iter().cloned())
        };
        let r1 = sim(1);
        let r8 = sim(8);
        let wait8 = run_waitful(&query, &events, 8);

        assert_eq!(r1.complex_events, seq.complex_events);
        assert_eq!(r8.complex_events, seq.complex_events);

        let speedup = r1.rounds.unwrap_or(0) as f64 / r8.rounds.unwrap_or(0).max(1) as f64;
        println!("q = {q:>3}  ratio = {:.3}", q as f64 / ws as f64);
        println!(
            "  ground-truth completion probability: {:>5.1}%  ({} groups, {} matches)",
            seq.completion_probability() * 100.0,
            seq.cgs_created,
            seq.cgs_completed,
        );
        println!(
            "  SPECTRE   speculation speedup 1→8 instances: {speedup:.1}x \
             ({} rollbacks, {} versions dropped)",
            r8.metrics.rollbacks, r8.metrics.versions_dropped
        );
        println!(
            "  wait-based parallelism (no speculation), 8 instances: {:.1}x\n",
            wait8.speedup
        );
    }
    println!(
        "speculation exploits parallelism where waiting cannot: overlapping\n\
         windows with consumption serialize the wait-based baseline."
    );
}
