//! Chart-pattern scenario (paper query Q2, after Balkesen & Tatbul): detect
//! a triple price oscillation between limits — `A B+ C D+ E F+ G H+ I J+ K
//! L+ M` with Kleene-`+` steps — over sliding windows with full consumption,
//! and inspect how the variable pattern length drives speculation.
//!
//! ```sh
//! cargo run --release -p spectre-examples --bin chart_patterns
//! ```

use std::sync::Arc;

use spectre_baselines::{run_sequential, TrexEngine};
use spectre_core::{SpectreConfig, SpectreEngine};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_query::queries::{self, StockVocab};

fn main() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(
        NyseConfig {
            symbols: 150,
            leaders: 8,
            events: 6_000,
            seed: 31,
            ..NyseConfig::default()
        },
        &mut schema,
    )
    .collect();
    let vocab = StockVocab::install(&mut schema);

    // Price band from the stream's quartiles.
    let mut closes: Vec<f64> = events
        .iter()
        .filter_map(|e| e.f64(vocab.close_price))
        .collect();
    closes.sort_by(f64::total_cmp);
    let lower = closes[closes.len() / 4];
    let upper = closes[3 * closes.len() / 4];

    let query = Arc::new(queries::q2(&mut schema, lower, upper, 600, 75));
    println!(
        "Q2 oscillation band: close < {lower:.2} … > {upper:.2}, window 600 events, slide 75\n"
    );

    let seq = run_sequential(&query, &events);
    let avg_len = if seq.complex_events.is_empty() {
        0.0
    } else {
        seq.complex_events
            .iter()
            .map(|c| c.len() as f64)
            .sum::<f64>()
            / seq.complex_events.len() as f64
    };
    println!(
        "sequential reference: {} oscillations, avg pattern length {:.0} events,",
        seq.complex_events.len(),
        avg_len
    );
    println!(
        "ground-truth completion probability {:.0}%\n",
        seq.completion_probability() * 100.0
    );

    // A general-purpose automaton engine detects the same patterns...
    let trex = TrexEngine::new(Arc::clone(&query)).run(&events);
    assert_eq!(trex.complex_events, seq.complex_events);
    println!(
        "T-REX-style automaton engine agrees ({} transition evaluations)",
        trex.transitions_evaluated
    );

    // ...and SPECTRE parallelizes it despite the consumption policy.
    for k in [1usize, 4, 16] {
        let report = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(k))
            .simulated()
            .build()
            .run(events.iter().cloned());
        assert_eq!(report.complex_events, seq.complex_events);
        println!(
            "SPECTRE k={k:<2}: {:>9} rounds, {:>5} versions dropped, {:>3} rollbacks",
            report.rounds.unwrap_or(0),
            report.metrics.versions_dropped,
            report.metrics.rollbacks
        );
    }
    println!("\nall engines emit identical complex events ✔");
}
