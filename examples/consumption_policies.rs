//! Reproduces the paper's introductory example (Fig. 1): query QE over the
//! stream A1 A2 B1 B2 B3 with consumption policy *none* vs *selected B*.
//!
//! ```sh
//! cargo run -p spectre-examples --bin consumption_policies
//! ```

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{SpectreConfig, SpectreEngine};
use spectre_events::{Event, Schema, Value};
use spectre_query::queries::{self, StockVocab};
use spectre_query::{ComplexEvent, ConsumptionPolicy, Query};

fn main() {
    let mut schema = Schema::new();
    let vocab = StockVocab::install(&mut schema);
    let sym_a = schema.symbol("A");
    let sym_b = schema.symbol("B");

    // The stream of paper Fig. 1: two A quotes opening overlapping 1-minute
    // windows, three B quotes.
    let mk = |seq: u64, ts: u64, sym| {
        Event::builder(vocab.quote)
            .seq(seq)
            .ts(ts)
            .attr(vocab.symbol, Value::Symbol(sym))
            .attr(vocab.open_price, 1.0)
            .attr(vocab.close_price, 2.0)
            .build()
    };
    let events = vec![
        mk(0, 0, sym_a),      // A1 opens w1
        mk(1, 10_000, sym_a), // A2 opens w2
        mk(2, 20_000, sym_b), // B1
        mk(3, 40_000, sym_b), // B2
        mk(4, 65_000, sym_b), // B3 (outside w1)
    ];
    let name = |seq: u64| match seq {
        0 => "A1",
        1 => "A2",
        2 => "B1",
        3 => "B2",
        _ => "B3",
    };
    let render = |ces: &[ComplexEvent]| -> Vec<String> {
        ces.iter()
            .map(|c| {
                c.constituents
                    .iter()
                    .map(|s| name(*s))
                    .collect::<Vec<_>>()
                    .join("·")
            })
            .collect()
    };

    // QE with consumption policy "selected B" (paper Fig. 1b).
    let qe = Arc::new(queries::qe(&mut schema, 60_000));
    // The same query without consumption (paper Fig. 1a).
    let qe_none = Arc::new(
        Query::builder("QE-none")
            .pattern_arc(Arc::clone(qe.pattern()))
            .window(qe.window().clone())
            .selection(qe.selection())
            .consumption(ConsumptionPolicy::None)
            .build()
            .expect("valid query"),
    );

    let config = SpectreConfig::with_instances(2);
    let sim = |query: &Arc<Query>| {
        SpectreEngine::builder(query)
            .config(config.clone())
            .simulated()
            .build()
            .run(events.iter().cloned())
    };
    let none = sim(&qe_none);
    let selected = sim(&qe);

    println!(
        "consumption policy NONE       → {:?}",
        render(&none.complex_events)
    );
    println!(
        "consumption policy SELECTED B → {:?}",
        render(&selected.complex_events)
    );

    // Paper Fig. 1a: A1B1, A1B2, A2B1, A2B2, A2B3.
    assert_eq!(
        render(&none.complex_events),
        vec!["A1·B1", "A1·B2", "A2·B1", "A2·B2", "A2·B3"]
    );
    // Paper Fig. 1b: B1 and B2 are consumed in w1 → only A2B3 remains in w2.
    assert_eq!(
        render(&selected.complex_events),
        vec!["A1·B1", "A1·B2", "A2·B3"]
    );

    // Both match the sequential reference.
    assert_eq!(
        none.complex_events,
        run_sequential(&qe_none, &events).complex_events
    );
    assert_eq!(
        selected.complex_events,
        run_sequential(&qe, &events).complex_events
    );
    println!("reproduces paper Fig. 1 exactly ✔");
}
