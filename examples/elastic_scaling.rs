//! Elastic scaling: choose the operator-instance count from the measured
//! consumption-group completion probability (the elasticity mechanism the
//! paper's evaluation discussion proposes, §4.2.1).
//!
//! The example streams two NYSE phases with very different pattern
//! behaviour — short patterns that almost always complete, then long
//! patterns that rarely do — and shows the controller adapting its
//! recommendation between them.
//!
//! ```sh
//! cargo run -p spectre-examples --bin elastic_scaling
//! ```

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::elastic::{ElasticConfig, ElasticController};
use spectre_core::{SpectreConfig, SpectreEngine};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_query::queries::{self, Direction};

fn main() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(
        NyseConfig {
            symbols: 100,
            leaders: 8,
            events: 12_000,
            seed: 11,
            ..NyseConfig::default()
        },
        &mut schema,
    )
    .collect();

    let mut controller = ElasticController::new(ElasticConfig {
        max_instances: 32,
        ..Default::default()
    });

    // Phase 1: short patterns (q = 3) — nearly every partial match
    // completes, so speculation is almost never wasted.
    // Phase 2: long patterns (q = 120 in a 400-event window) — most partial
    // matches are abandoned midway, capping useful parallelism.
    for (phase, q) in [("short patterns", 3usize), ("long patterns", 120)] {
        let query = Arc::new(queries::q1(&mut schema, q, 400, Direction::Rising));

        // Measure the phase's completion probability (in production this
        // comes from the splitter's running statistics).
        let stats = run_sequential(&query, &events);
        controller.observe(stats.completion_probability());
        let k = controller.recommend();

        let report = SpectreEngine::builder(&query)
            .config(SpectreConfig::with_instances(k))
            .simulated()
            .build()
            .run(events.iter().cloned());
        println!("phase: {phase}");
        println!(
            "  completion probability : {:.0}%",
            stats.completion_probability() * 100.0
        );
        println!("  recommended instances  : {k}");
        println!(
            "  complex events         : {} ({} versions dropped on the way)",
            report.complex_events.len(),
            report.metrics.versions_dropped
        );
        // Useful work per virtual round: how many of the k instances were
        // busy with events that ended up surviving.
        println!(
            "  events per round       : {:.2} (of {k} instances)",
            report.metrics.events_processed as f64 / report.rounds.unwrap_or(1).max(1) as f64
        );
    }
}
