//! Portfolio-monitoring scenario (paper query Q3): after a trade in a
//! leading symbol, watch for activity in a *set* of portfolio symbols — in
//! any order — within a sliding window; consume all constituents. Compares
//! the adaptive Markov predictor against fixed completion probabilities
//! (the paper's Fig. 11 experiment, in miniature).
//!
//! ```sh
//! cargo run --release -p spectre-examples --bin portfolio_monitor
//! ```

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{PredictorKind, SpectreConfig, SpectreEngine};
use spectre_datasets::{RandConfig, RandGenerator};
use spectre_events::Schema;
use spectre_query::queries;

fn main() {
    let mut schema = Schema::new();
    let gen = RandGenerator::new(
        RandConfig {
            symbols: 120,
            leaders: 4,
            events: 4_000,
            seed: 23,
            ..RandConfig::default()
        },
        &mut schema,
    );
    let symbols = gen.symbols().to_vec();
    let events: Vec<_> = gen.collect();

    // Portfolio: leader + 5 watched symbols, any order, within 500 events,
    // sliding every 50.
    let query = Arc::new(queries::q3(
        &mut schema,
        symbols[0],
        &symbols[1..6],
        500,
        50,
    ));

    let seq = run_sequential(&query, &events);
    println!(
        "portfolio alerts: {} (ground-truth completion probability {:.0}%)\n",
        seq.complex_events.len(),
        seq.completion_probability() * 100.0
    );

    println!(
        "{:<10} {:>14} {:>12} {:>10}",
        "predictor", "rounds", "dropped", "rollbacks"
    );
    let mut rows: Vec<(String, PredictorKind)> = vec![
        ("fixed 10%".into(), PredictorKind::Fixed(0.1)),
        ("fixed 50%".into(), PredictorKind::Fixed(0.5)),
        ("fixed 100%".into(), PredictorKind::Fixed(1.0)),
        ("Markov".into(), PredictorKind::default()),
    ];
    let mut best: Option<(String, u64)> = None;
    for (name, predictor) in rows.drain(..) {
        let config = SpectreConfig {
            instances: 8,
            predictor,
            ..Default::default()
        };
        let report = SpectreEngine::builder(&query)
            .config(config)
            .simulated()
            .build()
            .run(events.iter().cloned());
        let rounds = report.rounds.unwrap_or(0);
        assert_eq!(report.complex_events, seq.complex_events);
        println!(
            "{:<10} {:>14} {:>12} {:>10}",
            name, rounds, report.metrics.versions_dropped, report.metrics.rollbacks
        );
        if best.as_ref().is_none_or(|(_, r)| rounds < *r) {
            best = Some((name, rounds));
        }
    }
    let (winner, _) = best.expect("at least one predictor");
    println!("\nfastest predictor on this workload: {winner}");
    println!("(all predictors produce identical, sequential-exact output)");
}
