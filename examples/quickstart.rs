//! Quickstart: define a query with a consumption policy, stream synthetic
//! stock quotes through SPECTRE, and verify the output against the
//! sequential reference engine.
//!
//! ```sh
//! cargo run -p spectre-examples --bin quickstart
//! ```

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{SpectreConfig, SpectreEngine};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_query::parse_query;

fn main() {
    // 1. A schema interns attribute / type / symbol names.
    let mut schema = Schema::new();

    // 2. A synthetic NYSE-like quote stream (the real trace the paper
    //    uses is not redistributable; see DESIGN.md §5). The generator is
    //    a plain `Iterator<Item = Event>` and will be fed straight into
    //    the engine — it is materialized here only so step 6 can verify
    //    the output against the sequential reference.
    let nyse = NyseConfig {
        symbols: 100,
        leaders: 8,
        events: 20_000,
        seed: 7,
        ..NyseConfig::default()
    };
    let events: Vec<_> = NyseGenerator::new(nyse.clone(), &mut schema).collect();

    // 3. A query in the paper's extended MATCH_RECOGNIZE notation: three
    //    rising quotes after a rising quote of a leading symbol, within a
    //    window of 300 events; all constituents are consumed.
    let query = Arc::new(
        parse_query(
            "PATTERN (MLE RE1 RE2 RE3)
             DEFINE MLE AS (MLE.leading == TRUE AND MLE.closePrice > MLE.openPrice),
                    RE1 AS (RE1.closePrice > RE1.openPrice),
                    RE2 AS (RE2.closePrice > RE2.openPrice),
                    RE3 AS (RE3.closePrice > RE3.openPrice)
             WITHIN 300 EVENTS FROM MLE
             CONSUME ALL",
            &mut schema,
        )
        .expect("valid query"),
    );

    // 4. Open an engine session: 8 speculative operator instances under
    //    the deterministic virtual-time scheduler (swap `.simulated()` for
    //    `.threaded()` to run on real OS threads — same API, same output).
    let mut engine = SpectreEngine::builder(&query)
        .config(SpectreConfig::with_instances(8))
        .simulated()
        .build();

    // 5. Stream the generator straight into the session — no Vec fixture —
    //    draining complex events incrementally as their windows commit.
    let mut source = NyseGenerator::new(nyse, &mut schema);
    let mut complex_events = Vec::new();
    loop {
        let fed = engine.ingest(source.by_ref().take(4_096));
        complex_events.extend(engine.drain_events());
        if fed < 4_096 {
            break;
        }
    }
    let streamed_early = complex_events.len();
    let report = engine.finish();
    complex_events.extend(report.complex_events);

    println!("complex events : {}", complex_events.len());
    println!("  …of which {streamed_early} were drained before end-of-stream");
    println!("input events   : {}", report.input_events);
    println!(
        "speculation    : {} versions created, {} dropped, {} rollbacks",
        report.metrics.versions_created, report.metrics.versions_dropped, report.metrics.rollbacks
    );
    for ce in complex_events.iter().take(5) {
        println!("  {ce}");
    }

    // 6. Exactness guarantee (paper §2.3): identical to sequential
    //    processing — no false positives, no false negatives.
    let reference = run_sequential(&query, &events);
    assert_eq!(complex_events, reference.complex_events);
    println!("output matches the sequential reference ✔");
}
