//! Quickstart: define a query with a consumption policy, stream synthetic
//! stock quotes through SPECTRE, and verify the output against the
//! sequential reference engine.
//!
//! ```sh
//! cargo run -p spectre-examples --bin quickstart
//! ```

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{run_simulated, SpectreConfig};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_query::parse_query;

fn main() {
    // 1. A schema interns attribute / type / symbol names.
    let mut schema = Schema::new();

    // 2. Generate a synthetic NYSE-like quote stream (the real trace the
    //    paper uses is not redistributable; see DESIGN.md §5).
    let events: Vec<_> = NyseGenerator::new(
        NyseConfig {
            symbols: 100,
            leaders: 8,
            events: 20_000,
            seed: 7,
            ..NyseConfig::default()
        },
        &mut schema,
    )
    .collect();

    // 3. A query in the paper's extended MATCH_RECOGNIZE notation: three
    //    rising quotes after a rising quote of a leading symbol, within a
    //    window of 300 events; all constituents are consumed.
    let query = Arc::new(
        parse_query(
            "PATTERN (MLE RE1 RE2 RE3)
             DEFINE MLE AS (MLE.leading == TRUE AND MLE.closePrice > MLE.openPrice),
                    RE1 AS (RE1.closePrice > RE1.openPrice),
                    RE2 AS (RE2.closePrice > RE2.openPrice),
                    RE3 AS (RE3.closePrice > RE3.openPrice)
             WITHIN 300 EVENTS FROM MLE
             CONSUME ALL",
            &mut schema,
        )
        .expect("valid query"),
    );

    // 4. Run SPECTRE with 8 speculative operator instances (virtual-time
    //    simulation; use spectre_core::run_threaded for OS threads).
    let report = run_simulated(&query, events.clone(), &SpectreConfig::with_instances(8));

    println!("complex events : {}", report.complex_events.len());
    println!("virtual rounds : {}", report.rounds);
    println!(
        "speculation    : {} versions created, {} dropped, {} rollbacks",
        report.metrics.versions_created, report.metrics.versions_dropped, report.metrics.rollbacks
    );
    for ce in report.complex_events.iter().take(5) {
        println!("  {ce}");
    }

    // 5. Exactness guarantee (paper §2.3): identical to sequential
    //    processing — no false positives, no false negatives.
    let reference = run_sequential(&query, &events);
    assert_eq!(report.complex_events, reference.complex_events);
    println!("output matches the sequential reference ✔");
}
