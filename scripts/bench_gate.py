#!/usr/bin/env python3
"""Diff a freshly produced bench summary against the checked-in baseline.

Usage: bench_gate.py <baseline.json> <current.json> [--tolerance 0.30]

The gate is deliberately generous (default ±30 %): it exists to catch
wholesale hot-path regressions (a 2x slowdown, a tree-size explosion), not
to chase machine noise. Gated cases cover the legacy Vec-fed threaded
paths (batched/unbatched, consumption lazy/eager) and the generator-fed
streaming engine session (`streaming_k2`), so both the one-shot wrappers
and the incremental `SpectreEngine` surface are under the same trend
tracking. Throughput may drop by at most `tolerance`;
peak tree size may grow by at most `tolerance` (plus a small absolute
slack for tiny trees); cumulative predictor-refresh time may grow by at
most `--refresh-tolerance` (default ±50 %, plus a millisecond of absolute
slack — the vectorized refresh is cheap enough that timer noise dominates
small values). Cases present on only one side are reported but do not
fail the gate, so adding a bench case does not require regenerating the
baseline in the same commit; the same applies per-field, so adding a
summary field does not either.

Regenerate the baseline (same env as CI) with:

    SPECTRE_BENCH_EVENTS=5000 \
    SPECTRE_BENCH_SUMMARY=crates/bench/baseline/threaded_e2e.json \
        cargo bench -p spectre-bench --bench end_to_end
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--refresh-tolerance", type=float, default=0.50)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    if baseline.get("events") != current.get("events"):
        print(
            f"note: stream lengths differ (baseline {baseline.get('events')}, "
            f"current {current.get('events')}); throughput is still comparable, "
            "tree sizes may not be"
        )

    failures = []
    base_cases = baseline.get("cases", {})
    cur_cases = current.get("cases", {})
    for name in sorted(set(base_cases) | set(cur_cases)):
        if name not in cur_cases:
            print(f"  {name:<28} only in baseline (skipped)")
            continue
        if name not in base_cases:
            print(f"  {name:<28} new case (no baseline yet)")
            continue
        base, cur = base_cases[name], cur_cases[name]

        b_eps, c_eps = base.get("events_per_sec"), cur.get("events_per_sec")
        if b_eps and c_eps:
            floor = b_eps * (1.0 - args.tolerance)
            verdict = "ok" if c_eps >= floor else "REGRESSED"
            print(
                f"  {name:<28} {c_eps:>12.0f} ev/s  (baseline {b_eps:.0f}, "
                f"floor {floor:.0f}) {verdict}"
            )
            if c_eps < floor:
                failures.append(f"{name}: throughput {c_eps:.0f} < floor {floor:.0f}")

        b_tree, c_tree = base.get("peak_tree"), cur.get("peak_tree")
        if b_tree is not None and c_tree is not None:
            ceiling = b_tree * (1.0 + args.tolerance) + 16
            verdict = "ok" if c_tree <= ceiling else "REGRESSED"
            print(
                f"  {name:<28} peak tree {c_tree} (baseline {b_tree}, "
                f"ceiling {ceiling:.0f}) {verdict}"
            )
            if c_tree > ceiling:
                failures.append(f"{name}: peak tree {c_tree} > ceiling {ceiling:.0f}")

        b_rt, c_rt = base.get("predictor_refresh_ms"), cur.get("predictor_refresh_ms")
        if b_rt is not None and c_rt is not None:
            ceiling = b_rt * (1.0 + args.refresh_tolerance) + 1.0
            verdict = "ok" if c_rt <= ceiling else "REGRESSED"
            print(
                f"  {name:<28} refresh {c_rt:.3f} ms (baseline {b_rt:.3f}, "
                f"ceiling {ceiling:.3f}) {verdict}"
            )
            if c_rt > ceiling:
                failures.append(
                    f"{name}: predictor refresh {c_rt:.3f} ms > ceiling {ceiling:.3f}"
                )

    if failures:
        print("\nbench gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
