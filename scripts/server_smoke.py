#!/usr/bin/env python3
"""End-to-end smoke test of the spectre-server binaries.

Starts `spectre-server`, streams 100 k events into it from two concurrent
`spectre-feed` client processes (strided halves of the same seeded
stream), scrapes `/metrics` until every event is accounted for, drains
over the control socket, and asserts a clean exit with a final report
that balances exactly.

Usage:
    python3 scripts/server_smoke.py [--bin-dir target/release]
                                    [--events 100000] [--timeout 120]

Exits non-zero (with a diagnostic) on any failure. Stdlib only.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import time
import urllib.request


def fail(msg, server=None):
    if server is not None:
        server.kill()
        out, _ = server.communicate(timeout=10)
        sys.stderr.write("--- server output ---\n%s\n" % out)
    sys.stderr.write("server_smoke: FAIL: %s\n" % msg)
    sys.exit(1)


def read_banner(server, deadline):
    """Parses the LISTEN/HTTP/CONTROL/READY banner off server stdout."""
    addrs = {}
    while time.time() < deadline:
        line = server.stdout.readline()
        if not line:
            fail("server exited before READY", server)
        line = line.strip()
        parts = line.split()
        if len(parts) == 2 and parts[0] in ("LISTEN", "HTTP", "CONTROL"):
            addrs[parts[0]] = parts[1]
        elif line == "READY":
            for key in ("LISTEN", "HTTP", "CONTROL"):
                if key not in addrs:
                    fail("READY before %s address" % key, server)
            return addrs
    fail("timed out waiting for READY", server)


def scrape(http_addr, name):
    """Returns the value of one un-labelled metric, or None."""
    body = (
        urllib.request.urlopen("http://%s/metrics" % http_addr, timeout=10)
        .read()
        .decode()
    )
    for line in body.splitlines():
        parts = line.split(" ")
        if len(parts) == 2 and parts[0] == name:
            return int(parts[1])
    return None


def control(addr, command):
    """Sends one control line, returns the reply line."""
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as conn:
        conn.sendall((command + "\n").encode())
        reply = b""
        while not reply.endswith(b"\n"):
            chunk = conn.recv(4096)
            if not chunk:
                break
            reply += chunk
    return reply.decode().strip()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--bin-dir", default="target/release")
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()
    deadline = time.time() + args.timeout
    report_path = os.path.join(args.bin_dir, "server_smoke_report.json")

    server = subprocess.Popen(
        [
            os.path.join(args.bin_dir, "spectre-server"),
            "--q1", "3,150,rising",
            "--report", report_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        addrs = read_banner(server, deadline)
        print("server up: %s" % addrs)

        if control(addrs["CONTROL"], "PING") != "OK pong":
            fail("control PING failed", server)

        feeds = [
            subprocess.Popen(
                [
                    os.path.join(args.bin_dir, "spectre-feed"),
                    "--connect", addrs["LISTEN"],
                    "--events", str(args.events),
                    "--seed", "17",
                    "--stride", "%d/2" % i,
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            for i in range(2)
        ]
        sent = 0
        for feed in feeds:
            out, _ = feed.communicate(timeout=max(1.0, deadline - time.time()))
            if feed.returncode != 0:
                fail("spectre-feed failed: %s" % out, server)
            for line in out.splitlines():
                if line.startswith("SENT "):
                    sent += int(line.split()[1])
        if sent != args.events:
            fail("clients sent %d of %d events" % (sent, args.events), server)
        print("2 clients sent %d events" % sent)

        # The front-end counter is live and exact: wait until the server
        # has read every event frame off the sockets.
        while True:
            got = scrape(addrs["HTTP"], "spectre_server_events")
            if got == args.events:
                break
            if time.time() > deadline:
                fail("metrics report %s of %d events" % (got, args.events), server)
            time.sleep(0.2)
        print("/metrics accounts for all %d events" % args.events)

        reply = control(addrs["CONTROL"], "DRAIN")
        if reply != "OK draining":
            fail("DRAIN replied %r" % reply, server)

        out, _ = server.communicate(timeout=max(1.0, deadline - time.time()))
        if server.returncode != 0:
            fail("server exited %d:\n%s" % (server.returncode, out))
        with open(report_path) as fh:
            report = json.load(fh)
        if report.get("input_events") != args.events:
            fail("report input_events=%r, want %d" % (report.get("input_events"), args.events))
        if not report.get("queries"):
            fail("report has no per-query section: %r" % report)
        print(
            "clean drain: %d events in, %d complex events out, %.0f events/s"
            % (
                report["input_events"],
                report["complex_events"],
                report["events_per_sec"],
            )
        )
        print("server_smoke: PASS")
    except subprocess.TimeoutExpired:
        fail("timed out", server)


if __name__ == "__main__":
    main()
