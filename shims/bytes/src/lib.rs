//! Offline stand-in for the `bytes` crate.
//!
//! Implements the [`BytesMut`]/[`Bytes`] pair plus the [`Buf`]/[`BufMut`]
//! accessor traits over a plain `Vec<u8>`, covering exactly the surface the
//! SPECTRE event codec and dataset replay paths use. `advance`/`split_to`
//! memmove instead of refcount-splitting — semantically identical, merely
//! less zero-copy. Swap for the real crate once the registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A growable byte buffer, analogous to `bytes::BytesMut`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `slice` to the end of the buffer.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Removes all bytes from the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

/// An immutable byte buffer, analogous to `bytes::Bytes`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Read-side accessors over a byte buffer (little/big-endian integer pops).
pub trait Buf {
    /// Discards the first `n` bytes.
    fn advance(&mut self, n: usize);

    /// Pops the leading `N` bytes as an array.
    ///
    /// Implementations panic if fewer than `N` bytes remain; callers are
    /// expected to length-check first (the codec does).
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Pops a `u8`.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Pops a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Pops a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Pops a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Pops a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    /// Pops a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "advance out of bounds");
        self.data.drain(..n);
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[..N]);
        self.data.drain(..N);
        out
    }
}

/// Write-side accessors over a byte buffer (little/big-endian integer puts).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::new();
        b.put_u32_le(7);
        b.put_u64_le(u64::MAX);
        b.put_i64_le(-5);
        b.put_f64_le(1.5);
        b.put_u16_le(300);
        b.put_u8(9);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u8(), 9);
        assert!(b.is_empty());
    }

    #[test]
    fn split_advance_freeze() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        b.advance(6);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"world");
        assert!(b.is_empty());
        let frozen = head.freeze();
        assert_eq!(frozen.len(), 5);
        assert_eq!(&frozen[..], b"world");
    }
}
