//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the SPECTRE benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — as a plain wall-clock harness: each
//! routine is warmed up once and then timed for `sample_size` samples.
//! min/mean/median/max per iteration are printed *and retained* (see
//! [`take_summaries`]), so bench targets can emit machine-readable
//! summaries for trend tracking — the checked-in CI baseline diffs
//! against these statistics. No statistics engine beyond that, no HTML
//! reports; enough to keep the bench targets compiling, runnable and
//! honest until the real crate can be pulled from the registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;

/// Retained per-benchmark statistics over the timed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Benchmark id (`group/function`).
    pub id: String,
    /// Fastest sample.
    pub min: Duration,
    /// Arithmetic mean over all samples.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

static SUMMARIES: Mutex<Vec<Summary>> = Mutex::new(Vec::new());

/// Drains the summaries of every benchmark run so far in this process, in
/// execution order. Bench targets call this after their groups ran to
/// write trend-tracking artifacts.
pub fn take_summaries() -> Vec<Summary> {
    std::mem::take(&mut SUMMARIES.lock().expect("summary registry poisoned"))
}

/// Entry point of a benchmark target, analogous to `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `routine` under `id` and prints a summary line.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named group of benchmarks sharing a sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `routine` under `group/id` and prints a summary line.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, routine);
        self
    }

    /// Closes the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Timing handle passed to bench routines.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up call).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    routine(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{id:<40} min {:>12?}  mean {:>12?}  median {:>12?}  max {:>12?}  ({} samples)",
        samples[0],
        mean,
        median,
        samples[samples.len() - 1],
        samples.len()
    );
    SUMMARIES
        .lock()
        .expect("summary registry poisoned")
        .push(Summary {
            id: id.to_string(),
            min: samples[0],
            mean,
            max: *samples.last().expect("non-empty"),
            samples: samples.len(),
        });
}

/// Declares a function running the given bench targets, analogous to
/// `criterion::criterion_group!`. Supports both the positional form and the
/// `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function of a benchmark target, analogous to
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_are_retained_with_ordered_statistics() {
        let _ = take_summaries(); // isolate from any earlier bench
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("shim_selftest", |b| b.iter(|| black_box(2 + 2)));
        let summaries = take_summaries();
        assert_eq!(summaries.len(), 1);
        let s = &summaries[0];
        assert_eq!(s.id, "shim_selftest");
        assert_eq!(s.samples, 5);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(take_summaries().is_empty(), "drained");
    }
}
