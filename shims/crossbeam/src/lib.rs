//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`queue::SegQueue`] is provided — the single crossbeam type the
//! SPECTRE runtime uses for its cross-thread operation queues. The shim backs
//! it with a mutex-protected `VecDeque`; it is linearizable and lock-based
//! rather than lock-free, which is semantically equivalent (and fine for the
//! current scale). Swap for the real crate once the registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concurrent queues (shim: only [`queue::SegQueue`]).
pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes `value` onto the back of the queue.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pops the front element, or `None` if the queue is empty.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements at the time of the call.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("SegQueue")
                .field("len", &self.len())
                .finish()
        }
    }
}
