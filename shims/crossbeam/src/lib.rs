//! Offline stand-in for the `crossbeam` crate.
//!
//! Two crossbeam types are provided: [`queue::SegQueue`], the cross-thread
//! operation queue the SPECTRE runtime uses, and [`utils::CachePadded`],
//! the false-sharing guard around per-worker counter blocks. The shim backs
//! the queue with a mutex-protected `VecDeque`; it is linearizable and lock-based
//! rather than lock-free, which is semantically equivalent. Because every
//! `push`/`pop` takes the mutex, per-element traffic dominates threaded
//! profiles at scale; [`queue::SegQueue::push_many`] and
//! [`queue::SegQueue::pop_many`] move whole batches under a single lock
//! acquisition and are what the SPECTRE hot path uses. Swap for the real
//! crate once the registry is reachable — the batched methods are shim
//! extensions (real `crossbeam` has no `push_many`/`pop_many`), so the swap
//! needs a thin extension trait or a per-element fallback loop at the call
//! sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Utilities for concurrent programming (shim: only [`utils::CachePadded`]).
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line, preventing
    /// false sharing when adjacent values are written by different cores.
    ///
    /// 128-byte alignment covers both the 64-byte line of most x86-64 parts
    /// and the 128-byte spatial prefetcher pairs / Apple-silicon lines —
    /// the same choice the real crate makes on these targets.
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pads and aligns `value` to the length of a cache line.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn padded_values_are_cache_line_aligned() {
            assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
            let v: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
            for (i, p) in v.iter().enumerate() {
                assert_eq!(**p, i as u64);
                assert_eq!((p as *const CachePadded<u64>) as usize % 128, 0);
            }
        }

        #[test]
        fn deref_and_into_inner_roundtrip() {
            let mut p = CachePadded::new(41u32);
            *p += 1;
            assert_eq!(*p, 42);
            assert_eq!(p.into_inner(), 42);
        }
    }
}

/// Concurrent queues (shim: only [`queue::SegQueue`]).
pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes `value` onto the back of the queue.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pops the front element, or `None` if the queue is empty.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Pushes every element of `items` onto the back of the queue,
        /// preserving iteration order, under one lock acquisition.
        pub fn push_many<I: IntoIterator<Item = T>>(&self, items: I) {
            let mut inner = self.lock();
            inner.extend(items);
        }

        /// Pops up to `max` front elements into `out` (appended in queue
        /// order) under one lock acquisition. Returns how many were moved.
        pub fn pop_many(&self, out: &mut Vec<T>, max: usize) -> usize {
            let mut inner = self.lock();
            let n = max.min(inner.len());
            out.reserve(n);
            out.extend(inner.drain(..n));
            n
        }

        /// Number of queued elements at the time of the call.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("SegQueue")
                .field("len", &self.len())
                .finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn batched_ops_preserve_fifo_order() {
            let q = SegQueue::new();
            q.push(0);
            q.push_many([1, 2, 3]);
            q.push(4);
            let mut out = Vec::new();
            assert_eq!(q.pop_many(&mut out, 3), 3);
            assert_eq!(out, vec![0, 1, 2]);
            assert_eq!(q.pop_many(&mut out, usize::MAX), 2);
            assert_eq!(out, vec![0, 1, 2, 3, 4]);
            assert_eq!(q.pop_many(&mut out, usize::MAX), 0);
            assert!(q.is_empty());
        }
    }
}
