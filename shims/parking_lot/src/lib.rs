//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `parking_lot` API it actually uses, implemented on
//! top of `std::sync`. The semantic difference parking_lot is known for —
//! guards without poison `Result`s — is preserved by unwrapping poison into
//! the inner guard, so a panicking holder does not cascade into every later
//! lock site. Swap this path dependency for the real crate once the registry
//! is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader–writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
