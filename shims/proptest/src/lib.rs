//! Offline stand-in for the `proptest` crate.
//!
//! Reimplements the slice of proptest the SPECTRE property suites use: the
//! [`proptest!`] macro with `arg in strategy` bindings and
//! `#![proptest_config(..)]`, range/tuple/[`Just`](strategy::Just)/[`prop_oneof!`] /
//! [`collection::vec`] strategies, and the `prop_assert*`/[`prop_assume!`]
//! macros. Cases are generated from a seed derived deterministically from
//! the test name, so failures reproduce across runs. No shrinking: a
//! failing case panics with the sampled values' debug rendering instead of
//! a minimized counterexample. Swap for the real crate once the registry
//! is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and case plumbing.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{Rng, SampleRange, SeedableRng};

    /// Configuration for a [`proptest!`](crate::proptest) block, analogous
    /// to `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of [`prop_assume!`](crate::prop_assume)
        /// rejections tolerated across the whole run.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the run aborts with this message.
        Fail(String),
        /// The case was rejected by an assumption; another case is drawn.
        Reject,
    }

    /// Deterministic source of randomness for strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Creates a generator seeded from `name` (stable across runs).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a; any stable string hash works — the seed only needs to
            // differ between tests, not be cryptographic.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }

        /// Draws one uniform sample from `range`.
        pub fn sample<R: SampleRange>(&mut self, range: R) -> R::Output {
            self.0.gen_range(range)
        }
    }

    /// Drives the generate→run loop for one `proptest!` test function.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or when the rejection budget is exhausted,
    /// which is how failures surface through the standard test harness.
    pub fn run_cases<F>(config: &Config, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::deterministic(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "{name}: gave up after {rejected} prop_assume! rejections \
                         ({passed}/{} cases passed)",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {passed} failed: {msg}")
                }
            }
        }
    }

    /// Runs a closure returning a case result (exists so the [`proptest!`]
    /// expansion avoids an immediately-invoked closure literal).
    ///
    /// [`proptest!`]: crate::proptest
    pub fn run_one<F>(f: F) -> Result<(), TestCaseError>
    where
        F: FnOnce() -> Result<(), TestCaseError>,
    {
        f()
    }

    /// Appends the rendered sampled inputs to a failing case's message, so
    /// the panic names the counterexample (the shim does not shrink).
    pub fn attach_inputs(
        result: Result<(), TestCaseError>,
        inputs: String,
    ) -> Result<(), TestCaseError> {
        match result {
            Err(TestCaseError::Fail(msg)) => {
                Err(TestCaseError::Fail(format!("{msg}\n    inputs: {inputs}")))
            }
            other => other,
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Boxes a strategy, erasing its concrete type (used by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of the same value type.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.sample(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.sample(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.sample(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive bound on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests, analogous to `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// zero-argument test function that samples the strategies and runs the
/// body for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                    let mut __inputs = ::std::string::String::new();
                    $(
                        __inputs.push_str(::std::concat!(::std::stringify!($arg), " = "));
                        __inputs.push_str(&::std::format!("{:?}; ", $arg));
                    )+
                    let __result = $crate::test_runner::run_one(move || {
                        $body
                        ::std::result::Result::Ok(())
                    });
                    $crate::test_runner::attach_inputs(__result, __inputs)
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $crate::test_runner::Config::default();
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                    let mut __inputs = ::std::string::String::new();
                    $(
                        __inputs.push_str(::std::concat!(::std::stringify!($arg), " = "));
                        __inputs.push_str(&::std::format!("{:?}; ", $arg));
                    )+
                    let __result = $crate::test_runner::run_one(move || {
                        $body
                        ::std::result::Result::Ok(())
                    });
                    $crate::test_runner::attach_inputs(__result, __inputs)
                });
            }
        )*
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right
                ),
            ));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies, analogous to `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn generated_values_respect_strategies(
            x in 0u8..10,
            f in 0.5f64..=1.0,
            pair in (0u32..3, 0u32..3),
            v in crate::collection::vec(0u32..5, 1..4),
            choice in prop_oneof![Just(1usize), Just(5)],
        ) {
            prop_assert!(x < 10);
            prop_assert!((0.5..=1.0).contains(&f));
            prop_assert!(pair.0 < 3 && pair.1 < 3);
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(choice == 1 || choice == 5);
            prop_assume!(x != 255); // never rejects, exercises the path
        }
    }

    // No `#[test]` meta: expanded as a plain fn, invoked via catch_unwind
    // below to observe the failure message.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]

        fn always_fails(x in 0u8..10) {
            prop_assert!(x > 200, "x too small");
        }
    }

    #[test]
    fn failing_case_reports_its_inputs() {
        let payload = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is a formatted string");
        assert!(msg.contains("x too small"), "{msg}");
        assert!(msg.contains("inputs: x = "), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..100, 3..10);
        let mut a = crate::test_runner::TestRng::deterministic("seed-name");
        let mut b = crate::test_runner::TestRng::deterministic("seed-name");
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
