//! Offline stand-in for the `rand` crate.
//!
//! Provides [`rngs::SmallRng`] (a xoshiro256++ generator seeded through
//! SplitMix64 — the same family the real `SmallRng` uses), the
//! [`SeedableRng`]/[`Rng`] traits, and uniform range sampling for the
//! integer and float ranges the SPECTRE dataset generators draw from.
//! Deterministic for a fixed seed, which is all the workspace requires.
//! Swap for the real crate once the registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generator types (shim: only [`rngs::SmallRng`]).
pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::SmallRng;

/// Seeding constructors for generators.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors (avoids all-zero states).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Core generation plus uniform range sampling.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;

            fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the retry loop runs
                // `span / 2^64` of the time, i.e. essentially never here.
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= span.wrapping_neg() % span {
                        return self.start + hi as $ty;
                    }
                }
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$ty> {
            type Output = $ty;

            fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == end {
                    return start;
                }
                // `span` can't be computed as an exclusive range width when
                // `end` is the type maximum, so sample an offset instead.
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (0u64..span + 1).sample(rng) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<i64> {
    type Output = i64;

    fn sample<R: Rng>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let off = (0u64..span).sample(rng);
        self.start.wrapping_add(off as i64)
    }
}

impl SampleRange for std::ops::RangeInclusive<i64> {
    type Output = i64;

    fn sample<R: Rng>(self, rng: &mut R) -> i64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        if start == end {
            return start;
        }
        let span = end.wrapping_sub(start) as u64;
        if span == u64::MAX {
            return rng.next_u64() as i64;
        }
        start.wrapping_add((0u64..span + 1).sample(rng) as i64)
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;

    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;

    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn inclusive_ranges_cover_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            // These all previously overflowed on `end + 1`.
            let _ = rng.gen_range(1u64..=u64::MAX);
            let _ = rng.gen_range(1i64..=i64::MAX);
            let _ = rng.gen_range(0u8..=u8::MAX);
            assert_eq!(rng.gen_range(7usize..=7), 7);
            let v = rng.gen_range(250u8..=255);
            assert!((250..=255).contains(&v));
        }
    }

    #[test]
    fn integer_sampling_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &n in &counts {
            assert!((8_000..12_000).contains(&n), "count {n} far from uniform");
        }
    }
}
