//! Offline stand-in for the `serde` crate.
//!
//! SPECTRE's query and event types derive `Serialize`/`Deserialize` so that
//! a future wire/persistence layer can use them, but nothing in the
//! workspace serializes yet. This shim keeps the derives compiling without
//! network access: the traits are empty markers with blanket
//! implementations, and the derive macros (re-exported from the shim
//! `serde_derive`) generate nothing. Swap for the real crate once the
//! registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
