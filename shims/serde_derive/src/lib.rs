//! Offline stand-in for `serde_derive`.
//!
//! The shim `serde` crate gives `Serialize`/`Deserialize` blanket
//! implementations, so the derive macros have nothing to generate: they
//! accept the same positions real serde derives do (including
//! `#[serde(...)]` helper attributes) and emit no code. Swap for the real
//! crate once the registry is reachable.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; the shim `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; the shim `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
