//! Shared helpers for the SPECTRE integration test suite.
//!
//! The tests in `tests/` compare every execution mode of the workspace —
//! the sequential reference, the wait-based parallel baseline, the T-REX
//! style automaton engine, the deterministic simulation runtime and the
//! threaded runtime — against each other on the paper's queries and
//! datasets. This crate hosts the small amount of common scaffolding.

use std::sync::Arc;

use spectre_core::{run_simulated, SpectreConfig};
use spectre_events::Event;
use spectre_query::{ComplexEvent, Query};

/// Renders a complex event compactly for assertion diffs.
pub fn fmt_complex(ce: &ComplexEvent) -> String {
    format!("w{}@{}{:?}", ce.window_id, ce.ts, ce.constituents)
}

/// Renders a whole output stream compactly.
pub fn fmt_all(ces: &[ComplexEvent]) -> Vec<String> {
    ces.iter().map(fmt_complex).collect()
}

/// Asserts two outputs are identical, with a readable diff on mismatch.
pub fn assert_same_output(label: &str, got: &[ComplexEvent], expected: &[ComplexEvent]) {
    assert_eq!(
        fmt_all(got),
        fmt_all(expected),
        "{label}: output differs from the sequential reference"
    );
}

/// Runs the simulation runtime for each `k` and asserts output equality
/// with the sequential reference (the paper's central correctness claim,
/// §2.3: no false positives, no false negatives).
pub fn assert_sim_matches_sequential(query: &Arc<Query>, events: &[Event], ks: &[usize]) {
    let expected = spectre_baselines::run_sequential(query, events).complex_events;
    for &k in ks {
        let report = run_simulated(query, events.to_vec(), &SpectreConfig::with_instances(k));
        assert_same_output(&format!("sim k={k}"), &report.complex_events, &expected);
    }
}

/// A tiny deterministic schema + stream builder for hand-written scenarios.
pub mod mini {
    use spectre_events::{AttrKey, Event, EventType, Schema};

    /// Single-attribute event vocabulary used by hand-written streams.
    #[derive(Debug, Clone, Copy)]
    pub struct MiniVocab {
        /// The only event type.
        pub ty: EventType,
        /// The only attribute (`x`).
        pub x: AttrKey,
    }

    /// Interns the mini vocabulary.
    pub fn vocab(schema: &mut Schema) -> MiniVocab {
        MiniVocab {
            ty: schema.event_type("E"),
            x: schema.attr("x"),
        }
    }

    /// Builds a stream of events whose `x` attribute takes the given values.
    pub fn stream(v: MiniVocab, xs: &[f64]) -> Vec<Event> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| {
                Event::builder(v.ty)
                    .seq(i as u64)
                    .ts(i as u64)
                    .attr(v.x, x)
                    .build()
            })
            .collect()
    }
}
