//! Cross-engine differential tests: the T-REX style automaton engine and
//! the wait-based parallel model are independently implemented oracles that
//! must agree with the sequential reference on every query and dataset.

use std::sync::Arc;

use spectre_baselines::{run_sequential, run_waitful, TrexEngine};
use spectre_datasets::{NyseConfig, NyseGenerator, RandConfig, RandGenerator};
use spectre_events::Schema;
use spectre_integration::assert_same_output;
use spectre_query::queries::{self, Direction};

#[test]
fn trex_agrees_with_sequential_on_q1() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2500, 19), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 200, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;
    let trex = TrexEngine::new(Arc::clone(&query)).run(&events);
    assert_same_output("trex q1", &trex.complex_events, &expected);
}

#[test]
fn trex_agrees_with_sequential_on_q2() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2000, 23), &mut schema).collect();
    let query = Arc::new(queries::q2(&mut schema, 60.0, 140.0, 300, 60));
    let expected = run_sequential(&query, &events).complex_events;
    let trex = TrexEngine::new(Arc::clone(&query)).run(&events);
    assert_same_output("trex q2", &trex.complex_events, &expected);
}

#[test]
fn trex_agrees_with_sequential_on_q3() {
    let mut schema = Schema::new();
    let gen = RandGenerator::new(RandConfig::small(1800, 37), &mut schema);
    let symbols = gen.symbols().to_vec();
    let events: Vec<_> = gen.collect();
    let query = Arc::new(queries::q3(
        &mut schema,
        symbols[0],
        &symbols[1..5],
        300,
        60,
    ));
    let expected = run_sequential(&query, &events).complex_events;
    let trex = TrexEngine::new(Arc::clone(&query)).run(&events);
    assert_same_output("trex q3", &trex.complex_events, &expected);
}

#[test]
fn waitful_output_is_sequential_and_speedup_is_bounded() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2000, 41), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 200, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;
    for k in [1usize, 4, 16] {
        let r = run_waitful(&query, &events, k);
        assert_same_output(&format!("waitful k={k}"), &r.complex_events, &expected);
        assert!(r.speedup >= 1.0 - 1e-9, "speedup ≥ 1");
        assert!(
            r.speedup <= k as f64 + 1e-9,
            "speedup bounded by instance count"
        );
        assert!(r.makespan <= r.total_work, "parallelism never hurts");
    }
}

#[test]
fn waitful_speedup_collapses_under_consumption_dependencies() {
    // The motivating observation of §2.3: with consumption and overlapping
    // windows, the wait-based schedule is (nearly) serialized regardless of
    // k, while the same query *without* consumption parallelizes freely.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2000, 43), &mut schema).collect();
    let consuming = Arc::new(queries::q2(&mut schema, 60.0, 140.0, 400, 50));
    let r16 = run_waitful(&consuming, &events, 16);
    // Windows overlap 8-fold (ws=400, s=50): dependencies serialize them.
    assert!(
        r16.speedup < 4.0,
        "consumption dependencies must cap the wait-based speedup, got {}",
        r16.speedup
    );
}

#[test]
fn sequential_statistics_are_internally_consistent() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2500, 47), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 200, Direction::Rising));
    let r = run_sequential(&query, &events);
    assert_eq!(r.complex_events.len() as u64, r.cgs_completed);
    assert!(r.cgs_completed <= r.cgs_created);
    let p = r.completion_probability();
    assert!((0.0..=1.0).contains(&p));
    assert_eq!(r.per_window_processed.len() as u64, r.windows);
    assert_eq!(
        r.per_window_processed.iter().sum::<u64>(),
        r.events_processed
    );
    // Every constituent of every complex event is consumed exactly once
    // (ConsumptionPolicy::All), so counting distinct constituents gives the
    // consumed-events total.
    let distinct: std::collections::HashSet<u64> = r
        .complex_events
        .iter()
        .flat_map(|ce| ce.constituents.iter().copied())
        .collect();
    assert_eq!(distinct.len() as u64, r.consumed_events);
}

#[test]
fn consumed_events_never_appear_in_two_complex_events() {
    // The defining property of consumption (§1): one event, one pattern
    // instance.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(3000, 53), &mut schema).collect();
    for query in [
        Arc::new(queries::q1(&mut schema, 3, 250, Direction::Rising)),
        Arc::new(queries::q2(&mut schema, 60.0, 140.0, 400, 80)),
    ] {
        let r = run_sequential(&query, &events);
        let mut seen = std::collections::HashSet::new();
        for ce in &r.complex_events {
            for &c in &ce.constituents {
                assert!(
                    seen.insert(c),
                    "event {c} consumed twice (query {})",
                    query.name()
                );
            }
        }
    }
}
