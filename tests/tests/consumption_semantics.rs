//! Reproduces paper Fig. 1 exactly: query QE over the stream
//! `A1 A2 B1 B2 B3` under consumption policy *None* (5 complex events) and
//! *Selected B* (3 complex events), plus further hand-written consumption
//! scenarios from §2 and §3.1.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{run_simulated, SpectreConfig};
use spectre_events::{Event, Schema, Value};
use spectre_integration::fmt_all;
use spectre_query::queries::StockVocab;
use spectre_query::{ConsumptionPolicy, Expr, Pattern, Query, SelectionPolicy, WindowSpec};

/// Builds the Fig. 1 stream: A1, A2, B1, B2, B3 (in that order), all within
/// one minute of each other so both windows span all B events.
fn fig1_stream(schema: &mut Schema) -> (Vec<Event>, StockVocab) {
    let vocab = StockVocab::install(schema);
    let sym_a = schema.symbol("A");
    let sym_b = schema.symbol("B");
    let quotes = [
        (sym_a, 0u64),   // A1
        (sym_a, 10_000), // A2
        (sym_b, 20_000), // B1
        (sym_b, 30_000), // B2
        (sym_b, 40_000), // B3
    ];
    let events = quotes
        .iter()
        .enumerate()
        .map(|(i, &(sym, ts))| {
            Event::builder(vocab.quote)
                .seq(i as u64)
                .ts(ts)
                .attr(vocab.symbol, Value::Symbol(sym))
                .attr(vocab.open_price, 10.0)
                .attr(vocab.close_price, 11.0)
                .build()
        })
        .collect();
    (events, vocab)
}

/// QE with a configurable consumption policy: window opens on each A quote,
/// time scope 1 minute, selection "first A, each B".
fn qe_with(schema: &mut Schema, vocab: StockVocab, cp: ConsumptionPolicy) -> Query {
    let sym_a = schema.symbol("A");
    let sym_b = schema.symbol("B");
    let a_pred = Expr::current(vocab.symbol).eq_(Expr::value(Value::Symbol(sym_a)));
    let b_pred = Expr::current(vocab.symbol).eq_(Expr::value(Value::Symbol(sym_b)));
    Query::builder("QE")
        .pattern(
            Pattern::builder()
                .one("A", a_pred.clone())
                .one("B", b_pred)
                .build()
                .unwrap(),
        )
        .window(WindowSpec::on_match_time(Some(vocab.quote), a_pred, 60_000).unwrap())
        .selection(SelectionPolicy::EachLast)
        .consumption(cp)
        .build()
        .unwrap()
}

#[test]
fn fig1a_no_consumption_yields_five_complex_events() {
    let mut schema = Schema::new();
    let (events, vocab) = fig1_stream(&mut schema);
    let query = Arc::new(qe_with(&mut schema, vocab, ConsumptionPolicy::None));
    let r = run_sequential(&query, &events);
    // Paper Fig. 1a: A1B1, A1B2, A1B3*, A2B1, A2B2, A2B3.
    // (*The paper's w1 closes before B3 — its A1 window spans exactly
    //  [A1, A1+1min] and B3 falls at A1+40s, inside the scope, so with the
    //  stated timestamps A1B3 is also produced; the figure's stream spaces
    //  B3 outside w1. We reproduce the figure's count with B3 late below.)
    let w0: Vec<_> = r
        .complex_events
        .iter()
        .filter(|c| c.window_id == 0)
        .collect();
    let w1: Vec<_> = r
        .complex_events
        .iter()
        .filter(|c| c.window_id == 1)
        .collect();
    assert_eq!(w0.len(), 3, "A1 correlates with each B");
    assert_eq!(w1.len(), 3, "A2 correlates with each B");
}

#[test]
fn fig1a_exact_paper_timing_yields_five() {
    // Place B3 outside w1's scope (later than A1 + 1 min) as drawn in
    // Fig. 1: w1 = {A1..B2}, w2 = {A2..B3}.
    let mut schema = Schema::new();
    let vocab = StockVocab::install(&mut schema);
    let sym_a = schema.symbol("A");
    let sym_b = schema.symbol("B");
    let quotes = [
        (sym_a, 0u64),   // A1
        (sym_a, 30_000), // A2
        (sym_b, 40_000), // B1
        (sym_b, 50_000), // B2
        (sym_b, 70_000), // B3 — outside A1's minute, inside A2's
    ];
    let events: Vec<Event> = quotes
        .iter()
        .enumerate()
        .map(|(i, &(sym, ts))| {
            Event::builder(vocab.quote)
                .seq(i as u64)
                .ts(ts)
                .attr(vocab.symbol, Value::Symbol(sym))
                .attr(vocab.open_price, 10.0)
                .attr(vocab.close_price, 11.0)
                .build()
        })
        .collect();

    let none = Arc::new(qe_with(&mut schema, vocab, ConsumptionPolicy::None));
    let r_none = run_sequential(&none, &events);
    assert_eq!(
        r_none.complex_events.len(),
        5,
        "Fig. 1a: A1B1, A1B2, A2B1, A2B2, A2B3; got {:?}",
        fmt_all(&r_none.complex_events)
    );

    let selected = Arc::new(qe_with(
        &mut schema,
        vocab,
        ConsumptionPolicy::Selected(vec!["B".into()]),
    ));
    let r_sel = run_sequential(&selected, &events);
    // Fig. 1b: A1B1, A1B2, A2B3 — B1/B2 consumed in w1.
    assert_eq!(
        r_sel.complex_events.len(),
        3,
        "Fig. 1b: A1B1, A1B2, A2B3; got {:?}",
        fmt_all(&r_sel.complex_events)
    );
    let constituents: Vec<Vec<u64>> = r_sel
        .complex_events
        .iter()
        .map(|c| c.constituents.clone())
        .collect();
    assert_eq!(constituents, vec![vec![0, 2], vec![0, 3], vec![1, 4]]);
}

#[test]
fn fig1b_speculative_runtime_reproduces_selected_b() {
    let mut schema = Schema::new();
    let (events, vocab) = fig1_stream(&mut schema);
    let query = Arc::new(qe_with(
        &mut schema,
        vocab,
        ConsumptionPolicy::Selected(vec!["B".into()]),
    ));
    let expected = run_sequential(&query, &events).complex_events;
    for k in [1usize, 2, 4] {
        let report = run_simulated(&query, events.clone(), &SpectreConfig::with_instances(k));
        assert_eq!(
            fmt_all(&report.complex_events),
            fmt_all(&expected),
            "k = {k}"
        );
    }
}

#[test]
fn selected_a_keeps_b_events_reusable() {
    // Consuming only A: every window produces at most one match chain from
    // its first A, but B events stay available to later windows.
    let mut schema = Schema::new();
    let (events, vocab) = fig1_stream(&mut schema);
    let query = Arc::new(qe_with(
        &mut schema,
        vocab,
        ConsumptionPolicy::Selected(vec!["A".into()]),
    ));
    let r = run_sequential(&query, &events);
    // w1: A1 correlates with B1, B2, B3 — A1 is consumed after the first
    // completion, but "first A, each B" keeps the same match alive inside
    // the window; consumption affects *other* windows.
    // w2 opened by A2: A2 not consumed by w1, so it correlates with all Bs.
    let w1_count = r.complex_events.iter().filter(|c| c.window_id == 0).count();
    assert!(w1_count >= 1);
    // B events were never consumed: each window's first A correlates.
    let consumed_bs = r
        .complex_events
        .iter()
        .flat_map(|c| c.constituents.iter())
        .filter(|&&s| s >= 2)
        .count();
    assert!(consumed_bs >= 2, "B events are re-used across windows");
}

#[test]
fn consumption_is_atomic_on_completion_only() {
    // §2.1: "events are not consumed while they only build a partial match".
    // Pattern A B C (values 1, 2, 3): the stream 1 2 1 2 3 must complete
    // using the *first* A and B, and the partial match of the second 1/2
    // pair must not consume anything.
    let mut schema = Schema::new();
    let v = spectre_integration::mini::vocab(&mut schema);
    let events = spectre_integration::mini::stream(v, &[1.0, 2.0, 1.0, 2.0, 3.0]);
    let query = Arc::new(
        Query::builder("abc")
            .pattern(
                Pattern::builder()
                    .one("A", Expr::current(v.x).eq_(Expr::value(1.0)))
                    .one("B", Expr::current(v.x).eq_(Expr::value(2.0)))
                    .one("C", Expr::current(v.x).eq_(Expr::value(3.0)))
                    .build()
                    .unwrap(),
            )
            .window(WindowSpec::count_sliding(5, 2).unwrap())
            .consumption(ConsumptionPolicy::All)
            .build()
            .unwrap(),
    );
    let r = run_sequential(&query, &events);
    assert_eq!(r.complex_events.len(), 1);
    assert_eq!(r.complex_events[0].constituents, vec![0, 1, 4]);
    // Exactly one consumption group completed; the w2 partial match (1 at
    // seq 2, 2 at seq 3) was abandoned at window end without consuming.
    assert_eq!(r.cgs_completed, 1);
    assert!(r.cgs_created >= 2);
}
