//! Dataset, CSV and replay-path integration: generators are deterministic,
//! CSV round-trips losslessly, and the framed (codec) ingestion path feeds
//! engines identically to direct replay.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{run_simulated, SpectreConfig};
use spectre_datasets::{csv, NyseConfig, NyseGenerator, RandConfig, RandGenerator, ReplaySource};
use spectre_events::Schema;
use spectre_integration::fmt_all;
use spectre_query::queries::{self, Direction};

#[test]
fn nyse_generator_is_deterministic_per_seed() {
    let mut s1 = Schema::new();
    let mut s2 = Schema::new();
    let a: Vec<_> = NyseGenerator::new(NyseConfig::small(500, 9), &mut s1).collect();
    let b: Vec<_> = NyseGenerator::new(NyseConfig::small(500, 9), &mut s2).collect();
    assert_eq!(a, b);
    let c: Vec<_> = NyseGenerator::new(NyseConfig::small(500, 10), &mut s1).collect();
    assert_ne!(a, c, "different seeds produce different streams");
}

#[test]
fn rand_generator_is_deterministic_per_seed() {
    let mut s1 = Schema::new();
    let mut s2 = Schema::new();
    let a: Vec<_> = RandGenerator::new(RandConfig::small(500, 9), &mut s1).collect();
    let b: Vec<_> = RandGenerator::new(RandConfig::small(500, 9), &mut s2).collect();
    assert_eq!(a, b);
}

#[test]
fn nyse_symbols_are_roughly_round_robin() {
    let mut schema = Schema::new();
    let config = NyseConfig {
        symbols: 10,
        leaders: 2,
        events: 100,
        ..NyseConfig::default()
    };
    let gen = NyseGenerator::new(config, &mut schema);
    let vocab = gen.vocab();
    let events: Vec<_> = gen.collect();
    // Every symbol appears exactly events/symbols times.
    let mut counts = std::collections::HashMap::new();
    for ev in &events {
        *counts
            .entry(ev.symbol(vocab.symbol).unwrap())
            .or_insert(0u32) += 1;
    }
    assert_eq!(counts.len(), 10);
    assert!(counts.values().all(|&c| c == 10));
    // Timestamps are non-decreasing.
    assert!(events.windows(2).all(|w| w[0].ts() <= w[1].ts()));
}

#[test]
fn csv_roundtrip_preserves_stream_and_output() {
    let dir = std::env::temp_dir().join("spectre-csv-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("quotes.csv");

    let mut schema = Schema::new();
    let gen = NyseGenerator::new(NyseConfig::small(800, 13), &mut schema);
    let vocab = gen.vocab();
    let events: Vec<_> = gen.collect();
    csv::write_quotes(&path, &events, &schema, vocab).unwrap();

    let mut schema2 = Schema::new();
    let restored = csv::read_quotes(&path, &mut schema2).unwrap();
    assert_eq!(restored.len(), events.len());

    // Same query over original and restored stream gives the same output
    // (symbol ids may differ between schemas; outputs are seq-based).
    let q1 = Arc::new(queries::q1(&mut schema, 3, 100, Direction::Rising));
    let q2 = Arc::new(queries::q1(&mut schema2, 3, 100, Direction::Rising));
    let out1 = run_sequential(&q1, &events);
    let out2 = run_sequential(&q2, &restored);
    assert_eq!(fmt_all(&out1.complex_events), fmt_all(&out2.complex_events));
    std::fs::remove_file(&path).ok();
}

#[test]
fn csv_read_rejects_malformed_lines() {
    let dir = std::env::temp_dir().join("spectre-csv-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.csv");
    std::fs::write(&path, "0,0,SYM,1.0\n").unwrap(); // too few fields
    let mut schema = Schema::new();
    let err = csv::read_quotes(&path, &mut schema);
    assert!(err.is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn framed_replay_equals_direct_replay() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(600, 15), &mut schema).collect();
    for chunk in [1usize, 7, 64, 1024] {
        let direct: Vec<_> = ReplaySource::direct(events.clone()).collect();
        let framed: Vec<_> = ReplaySource::framed(events.clone(), chunk).collect();
        assert_eq!(direct, framed, "chunk = {chunk}");
    }
}

#[test]
fn engine_output_identical_through_codec_path() {
    // End-to-end: NYSE stream → binary frames → decoder → SPECTRE, as the
    // paper's TCP client would feed it.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1200, 19), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;
    let framed: Vec<_> = ReplaySource::framed(events, 128).collect();
    let report = run_simulated(&query, framed, &SpectreConfig::with_instances(4));
    assert_eq!(fmt_all(&report.complex_events), fmt_all(&expected));
}
