//! Differential tests: the SPECTRE simulation runtime must produce exactly
//! the sequential-reference output (paper §2.3: "deliver exactly those
//! complex events that would be produced in sequential processing; in
//! particular, no false-positive and false-negatives shall occur") for all
//! of the paper's queries, both datasets and a sweep of parallelism
//! degrees, predictors and configuration corner cases.

use std::sync::Arc;

use spectre_core::{run_simulated, PredictorKind, SpectreConfig};
use spectre_datasets::{NyseConfig, NyseGenerator, RandConfig, RandGenerator};
use spectre_events::Schema;
use spectre_integration::{assert_same_output, assert_sim_matches_sequential};
use spectre_query::queries::{self, Direction};

#[test]
fn q1_on_nyse_matches_sequential_for_all_k() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(3000, 7), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 200, Direction::Rising));
    assert_sim_matches_sequential(&query, &events, &[1, 2, 4, 8]);
}

#[test]
fn q1_falling_on_nyse_matches_sequential() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2000, 11), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 4, 150, Direction::Falling));
    assert_sim_matches_sequential(&query, &events, &[1, 4]);
}

#[test]
fn q1_large_pattern_low_completion_matches_sequential() {
    // Large q / small window → most consumption groups abandon.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2500, 3), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 30, 100, Direction::Rising));
    assert_sim_matches_sequential(&query, &events, &[1, 8]);
}

#[test]
fn q2_on_nyse_matches_sequential_for_all_k() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2500, 21), &mut schema).collect();
    let query = Arc::new(queries::q2(&mut schema, 60.0, 140.0, 400, 80));
    assert_sim_matches_sequential(&query, &events, &[1, 2, 4, 8]);
}

#[test]
fn q2_tight_limits_matches_sequential() {
    // Narrow band → patterns almost never complete ("0 cplx" column of
    // Fig. 10(b)).
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1500, 5), &mut schema).collect();
    let query = Arc::new(queries::q2(&mut schema, 99.0, 101.0, 300, 50));
    assert_sim_matches_sequential(&query, &events, &[1, 4]);
}

#[test]
fn q3_on_rand_matches_sequential_for_all_k() {
    let mut schema = Schema::new();
    let gen = RandGenerator::new(RandConfig::small(2000, 17), &mut schema);
    let symbols = gen.symbols().to_vec();
    let events: Vec<_> = gen.collect();
    let query = Arc::new(queries::q3(
        &mut schema,
        symbols[0],
        &symbols[1..4],
        250,
        50,
    ));
    assert_sim_matches_sequential(&query, &events, &[1, 2, 4, 8]);
}

#[test]
fn q3_large_set_matches_sequential() {
    let mut schema = Schema::new();
    let gen = RandGenerator::new(RandConfig::small(1500, 29), &mut schema);
    let symbols = gen.symbols().to_vec();
    let events: Vec<_> = gen.collect();
    let query = Arc::new(queries::q3(
        &mut schema,
        symbols[0],
        &symbols[1..11],
        400,
        100,
    ));
    assert_sim_matches_sequential(&query, &events, &[1, 8]);
}

#[test]
fn qe_on_rand_matches_sequential() {
    let mut schema = Schema::new();
    // QE needs symbols literally named "A"/"B": reuse the RAND generator's
    // vocabulary by querying two of its symbols instead.
    let gen = RandGenerator::new(RandConfig::small(1200, 31), &mut schema);
    let events: Vec<_> = gen.collect();
    let query = Arc::new(queries::qe(&mut schema, 10_000));
    // The generated stream has no "A"/"B" symbols; windows never open.
    // Still a valid differential case (must be empty on both sides).
    assert_sim_matches_sequential(&query, &events, &[1, 4]);
}

#[test]
fn fixed_predictors_do_not_change_output() {
    // Wrong probability predictions cost throughput, never correctness
    // (paper §4.2.2).
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1500, 41), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
    for p in [0.0, 0.2, 0.5, 0.8, 1.0] {
        let config = SpectreConfig {
            instances: 4,
            predictor: PredictorKind::Fixed(p),
            ..Default::default()
        };
        let report = run_simulated(&query, events.clone(), &config);
        assert_same_output(&format!("fixed p={p}"), &report.complex_events, &expected);
    }
}

#[test]
fn aggressive_consistency_check_frequency_is_transparent() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1200, 43), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 120, Direction::Rising));
    let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
    for freq in [1u32, 7, 1024] {
        let config = SpectreConfig {
            instances: 4,
            consistency_check_freq: freq,
            ..Default::default()
        };
        let report = run_simulated(&query, events.clone(), &config);
        assert_same_output(
            &format!("check_freq={freq}"),
            &report.complex_events,
            &expected,
        );
    }
}

#[test]
fn tiny_tree_budget_is_transparent() {
    // Back-pressure on the speculative fan-out must not change the output.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1200, 47), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 120, Direction::Rising));
    let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
    for budget in [2usize, 8, 64] {
        let config = SpectreConfig {
            instances: 4,
            max_tree_versions: budget,
            ..Default::default()
        };
        let report = run_simulated(&query, events.clone(), &config);
        assert_same_output(
            &format!("max_tree_versions={budget}"),
            &report.complex_events,
            &expected,
        );
    }
}

#[test]
fn slow_ingestion_is_transparent() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(800, 53), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
    let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
    for ingest in [1usize, 3, 1000] {
        let config = SpectreConfig {
            instances: 3,
            ingest_per_cycle: ingest,
            ..Default::default()
        };
        let report = run_simulated(&query, events.clone(), &config);
        assert_same_output(
            &format!("ingest_per_cycle={ingest}"),
            &report.complex_events,
            &expected,
        );
    }
}

#[test]
fn checkpointing_is_transparent() {
    // §3.3 ablation: recovering from checkpoints instead of the window
    // start must never change the output, whatever the interval.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1500, 59), &mut schema).collect();
    let query = Arc::new(queries::q2(&mut schema, 60.0, 140.0, 300, 60));
    let expected = spectre_baselines::run_sequential(&query, &events).complex_events;
    for freq in [Some(8u32), Some(64), Some(1024), None] {
        let config = SpectreConfig {
            instances: 4,
            checkpoint_freq: freq,
            ..Default::default()
        };
        let report = run_simulated(&query, events.clone(), &config);
        assert_same_output(
            &format!("checkpoint_freq={freq:?}"),
            &report.complex_events,
            &expected,
        );
    }
}

#[test]
fn empty_stream_produces_empty_output() {
    let mut schema = Schema::new();
    let query = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
    let report = run_simulated(&query, vec![], &SpectreConfig::with_instances(4));
    assert!(report.complex_events.is_empty());
}

#[test]
fn single_event_stream_terminates() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1, 1), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
    assert_sim_matches_sequential(&query, &events, &[1, 4]);
}
