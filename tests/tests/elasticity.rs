//! Elasticity integration: the completion-probability-driven instance
//! recommendation (paper §4.2.1 discussion) must track where the measured
//! throughput saturates — scale out freely at the certain extremes, cap the
//! parallelism at coin-flip completion probabilities.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::elastic::{recommend_for, speculative_efficiency, ElasticConfig};
use spectre_core::{run_simulated, SpectreConfig};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_query::queries::{self, Direction};

fn throughput(
    query: &Arc<spectre_query::Query>,
    events: &[spectre_events::Event],
    k: usize,
) -> f64 {
    let report = run_simulated(query, events.to_vec(), &SpectreConfig::with_instances(k));
    if report.rounds == 0 {
        0.0
    } else {
        report.input_events as f64 / report.rounds as f64
    }
}

#[test]
fn recommendation_is_near_best_fixed_k() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(4000, 71), &mut schema).collect();
    let config = ElasticConfig {
        max_instances: 16,
        ..Default::default()
    };
    // Two regimes: tiny pattern (always completes) and long pattern
    // (mostly abandons).
    for q in [2usize, 60] {
        let query = Arc::new(queries::q1(&mut schema, q, 200, Direction::Rising));
        let gt = run_sequential(&query, &events).completion_probability();
        let rec = recommend_for(&config, gt);
        let thr_rec = throughput(&query, &events, rec);
        let best = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&k| throughput(&query, &events, k))
            .fold(0.0f64, f64::max);
        assert!(
            thr_rec >= 0.55 * best,
            "q={q}: recommendation k={rec} reaches {thr_rec:.3}, best fixed {best:.3}"
        );
    }
}

#[test]
fn efficiency_model_matches_simulated_shape() {
    // The speculative-efficiency model predicts where adding instances
    // stops helping; verify the measured curve flattens no later than ~2x
    // the predicted knee.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(4000, 73), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 60, 200, Direction::Rising));
    let gt = run_sequential(&query, &events).completion_probability();
    // Mid-range probability → limited useful parallelism.
    if !(0.2..=0.8).contains(&gt) {
        // The workload drifted with generator changes; the test only makes
        // sense in the uncertain regime.
        return;
    }
    let eff16 = speculative_efficiency(gt, 16);
    let thr4 = throughput(&query, &events, 4);
    let thr16 = throughput(&query, &events, 16);
    // Measured gain from 4 → 16 instances must not exceed what full
    // efficiency would give, and stays in the ballpark of the model.
    assert!(thr16 / thr4 <= 4.5, "gain {:.2} bounded", thr16 / thr4);
    assert!(eff16 < 16.0, "model predicts waste at gt = {gt:.2}");
}

#[test]
fn controller_recommends_fewer_instances_in_uncertain_regimes() {
    let config = ElasticConfig {
        max_instances: 32,
        ..Default::default()
    };
    let certain = recommend_for(&config, 0.98);
    let uncertain = recommend_for(&config, 0.5);
    assert!(
        certain >= 16,
        "near-certain completion scales out, got {certain}"
    );
    assert!(uncertain <= 8, "coin-flip completion caps, got {uncertain}");
}
