//! Engine-session streaming equivalence: feeding the incremental
//! [`SpectreEngine`] — in chunks, or one pushed event at a time with
//! back-pressure retries — must produce output bit-identical to the legacy
//! one-shot `Vec` path, in both execution modes, across the seeded NYSE
//! equivalence matrix (k × batch × lazy). Plus the socket-free wire-framing
//! round trip: NYSE stream → length-prefixed frames → [`FramedSource`] →
//! engine session.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{run_simulated, run_threaded, PushResult, SpectreConfig, SpectreEngine};
use spectre_datasets::net::{FramedSource, StreamServer, TcpSource};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::codec::encode_all;
use spectre_events::{Event, Schema};
use spectre_integration::assert_same_output;
use spectre_query::queries::{self, Direction};
use spectre_query::{ComplexEvent, Query};

fn fixture(events: usize, seed: u64) -> (Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(events, seed), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    (query, events)
}

/// Streams `events` through an engine session in chunks of `chunk`,
/// draining committed outputs between chunks; returns the concatenation.
fn stream_in_chunks(
    query: &Arc<Query>,
    events: &[Event],
    config: SpectreConfig,
    threaded: bool,
    chunk: usize,
) -> Vec<ComplexEvent> {
    let builder = SpectreEngine::builder(query).config(config);
    let mut engine = if threaded {
        builder.threaded().build()
    } else {
        builder.simulated().build()
    };
    let mut out = Vec::new();
    for chunk in events.chunks(chunk) {
        engine.ingest(chunk.iter().cloned());
        out.append(&mut engine.drain_events());
    }
    let report = engine.finish();
    out.extend(report.complex_events);
    assert_eq!(report.input_events, events.len() as u64);
    out
}

/// Streams `events` through an engine session one `push` at a time,
/// retrying on back-pressure; returns all outputs.
fn stream_by_push(
    query: &Arc<Query>,
    events: &[Event],
    config: SpectreConfig,
    threaded: bool,
) -> Vec<ComplexEvent> {
    let builder = SpectreEngine::builder(query).config(config);
    let mut engine = if threaded {
        builder.threaded().build()
    } else {
        builder.simulated().build()
    };
    let mut out = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let mut event = event.clone();
        loop {
            match engine.push(event) {
                PushResult::Accepted => break,
                PushResult::Full(back) => event = back,
            }
        }
        if i % 500 == 499 {
            out.append(&mut engine.drain_events());
        }
    }
    out.extend(engine.finish().complex_events);
    out
}

#[test]
fn sim_streaming_matches_vec_path_across_the_matrix() {
    let (query, events) = fixture(2_000, 42);
    for lazy in [true, false] {
        for k in [1usize, 2, 4] {
            for batch in [1usize, 64] {
                let config =
                    SpectreConfig::with_batching(k, batch, 8).with_lazy_materialization(lazy);
                let expected = run_simulated(&query, events.clone(), &config).complex_events;
                assert!(!expected.is_empty());
                let chunked = stream_in_chunks(&query, &events, config.clone(), false, 97);
                assert_same_output(
                    &format!("sim chunked k={k} batch={batch} lazy={lazy}"),
                    &chunked,
                    &expected,
                );
                let pushed = stream_by_push(&query, &events, config, false);
                assert_same_output(
                    &format!("sim pushed k={k} batch={batch} lazy={lazy}"),
                    &pushed,
                    &expected,
                );
            }
        }
    }
}

#[test]
fn threaded_streaming_matches_vec_path_across_the_matrix() {
    let (query, events) = fixture(1_000, 83);
    for lazy in [true, false] {
        for k in [1usize, 2, 4] {
            for batch in [1usize, 64] {
                let config =
                    SpectreConfig::with_batching(k, batch, 8).with_lazy_materialization(lazy);
                let expected = run_threaded(&query, events.clone(), &config).complex_events;
                let chunked = stream_in_chunks(&query, &events, config.clone(), true, 97);
                assert_same_output(
                    &format!("threaded chunked k={k} batch={batch} lazy={lazy}"),
                    &chunked,
                    &expected,
                );
                let pushed = stream_by_push(&query, &events, config, true);
                assert_same_output(
                    &format!("threaded pushed k={k} batch={batch} lazy={lazy}"),
                    &pushed,
                    &expected,
                );
            }
        }
    }
}

#[test]
fn outputs_are_committed_incrementally() {
    // The windows of the first half of the stream retire long before the
    // stream ends: draining between chunks must surface outputs before
    // finish() — the session is a streaming engine, not a deferred batch.
    let (query, events) = fixture(3_000, 7);
    let expected = run_sequential(&query, &events).complex_events;
    assert!(expected.len() >= 4, "fixture must produce several outputs");
    let mut engine = SpectreEngine::builder(&query)
        .config(SpectreConfig::with_instances(2))
        .simulated()
        .build();
    let mut streamed = Vec::new();
    for chunk in events.chunks(200) {
        engine.ingest(chunk.iter().cloned());
        streamed.append(&mut engine.drain_events());
    }
    let before_finish = streamed.len();
    streamed.extend(engine.finish().complex_events);
    assert_same_output("incremental drain", &streamed, &expected);
    assert!(
        before_finish > 0,
        "no output committed before end-of-stream"
    );
}

#[test]
fn framed_wire_roundtrip_feeds_engine_without_sockets() {
    // NYSE stream → length-prefixed wire frames → FramedSource decode →
    // engine session, entirely in memory: the exact TcpSource framing path
    // with the socket replaced by a Cursor.
    let (query, events) = fixture(1_200, 19);
    let expected = run_sequential(&query, &events).complex_events;
    assert!(!expected.is_empty());
    let wire = encode_all(&events);
    let source = FramedSource::new(std::io::Cursor::new(wire.to_vec()));
    let mut engine = SpectreEngine::builder(&query)
        .config(SpectreConfig::with_instances(4))
        .simulated()
        .build();
    let fed = engine.ingest(source);
    assert_eq!(fed, events.len() as u64);
    let report = engine.finish();
    assert_same_output("framed roundtrip", &report.complex_events, &expected);
}

#[test]
fn tcp_source_streams_into_threaded_engine() {
    // The paper's deployment shape end to end: a TCP peer streams framed
    // events, TcpSource decodes them, and a threaded engine session
    // processes them incrementally — no Vec materialization engine-side.
    let (query, events) = fixture(800, 67);
    let expected = run_sequential(&query, &events).complex_events;
    let server = StreamServer::spawn(events.clone()).unwrap();
    let source = TcpSource::connect(server.addr()).unwrap();
    let report = SpectreEngine::builder(&query)
        .config(SpectreConfig::with_instances(2))
        .threaded()
        .build()
        .run(source);
    assert_eq!(server.join(), events.len() as u64);
    assert_eq!(report.input_events, events.len() as u64);
    assert_same_output("tcp source", &report.complex_events, &expected);
}
