//! Multi-query engine sessions: N queries hosted in one [`SpectreEngine`]
//! must each produce output bit-identical to a single-query session of
//! their own — across the k × batch × lazy matrix, in both execution
//! modes — while same-spec queries share window buffers in the store
//! (each window's events held exactly once). Deploying or retiring a
//! query mid-stream must leave the other queries' outputs untouched, and
//! the aggregate metric counters must equal the sum of the per-query
//! shares for every logically-per-query counter.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{QueryId, ReorderConfig, Report, SpectreConfig, SpectreEngine, WatermarkPolicy};
use spectre_datasets::{bounded_shuffle, NyseConfig, NyseGenerator};
use spectre_events::{Event, Schema};
use spectre_integration::assert_same_output;
use spectre_query::queries::{self, Direction};
use spectre_query::{ComplexEvent, Query};

/// A seeded NYSE stream plus two queries: `a` (the spec most tests share
/// across several deployments) and `b` with a different window spec.
fn fixture(events: usize, seed: u64) -> (Arc<Query>, Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(events, seed), &mut schema).collect();
    let a = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let b = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
    (a, b, events)
}

fn multi_session(
    queries: &[&Arc<Query>],
    config: SpectreConfig,
    threaded: bool,
) -> (SpectreEngine, Vec<QueryId>) {
    let mut builder = SpectreEngine::multi_builder().config(config);
    let ids: Vec<QueryId> = queries.iter().map(|q| builder.add_query(q)).collect();
    let engine = if threaded {
        builder.threaded().build()
    } else {
        builder.build()
    };
    (engine, ids)
}

fn query_outputs(report: &Report, qid: QueryId) -> &[ComplexEvent] {
    &report
        .queries
        .get(&qid)
        .unwrap_or_else(|| panic!("{qid} missing from report"))
        .complex_events
}

#[test]
fn hosted_queries_match_solo_sessions_across_the_matrix() {
    // Two same-spec deployments of `a` plus the different-spec `b`, all in
    // one simulated session: every per-query stream must be bit-identical
    // to the sequential reference (= a solo session of its own).
    let (a, b, events) = fixture(1_500, 17);
    let expected_a = run_sequential(&a, &events).complex_events;
    let expected_b = run_sequential(&b, &events).complex_events;
    assert!(!expected_a.is_empty() && !expected_b.is_empty());
    for lazy in [true, false] {
        for k in [1usize, 2, 4] {
            for batch in [1usize, 64] {
                let config =
                    SpectreConfig::with_batching(k, batch, 8).with_lazy_materialization(lazy);
                let (engine, ids) = multi_session(&[&a, &a, &b], config, false);
                let report = engine.run(events.clone());
                let tag = |q: &str| format!("sim {q} k={k} batch={batch} lazy={lazy}");
                assert_same_output(&tag("a#0"), query_outputs(&report, ids[0]), &expected_a);
                assert_same_output(&tag("a#1"), query_outputs(&report, ids[1]), &expected_a);
                assert_same_output(&tag("b"), query_outputs(&report, ids[2]), &expected_b);
            }
        }
    }
}

#[test]
fn threaded_four_same_spec_queries_share_windows_and_match_solo() {
    // The acceptance scenario: one threaded session hosting four same-spec
    // queries. Each per-query output stream is bit-identical to a solo
    // session's; the shared store opened each window exactly once (the
    // same count a solo session produces) while retiring it four times.
    let (a, _, events) = fixture(1_200, 29);
    let expected = run_sequential(&a, &events).complex_events;
    assert!(!expected.is_empty());
    let config = SpectreConfig::with_instances(2);

    let solo = SpectreEngine::builder(&a)
        .config(config.clone())
        .threaded()
        .build()
        .run(events.clone());
    assert_same_output("solo threaded", &solo.complex_events, &expected);

    let (engine, ids) = multi_session(&[&a, &a, &a, &a], config, true);
    let report = engine.run(events);
    for (i, qid) in ids.iter().enumerate() {
        assert_same_output(
            &format!("hosted a#{i}"),
            query_outputs(&report, *qid),
            &expected,
        );
    }
    // Window dedup, observed through the store counters.
    assert_eq!(
        report.metrics.store_windows_opened, solo.metrics.store_windows_opened,
        "four same-spec queries must open no more store windows than one"
    );
    assert_eq!(
        report.metrics.windows_retired,
        4 * solo.metrics.windows_retired,
        "every query still retires its own view of each window"
    );
}

#[test]
fn deploying_mid_stream_leaves_running_queries_unchanged() {
    // Half-way through the stream, deploy a second same-spec query (joins
    // the running spec group) and a different-spec query (opens a fresh
    // group mid-stream). The original query's output must stay bit-
    // identical to its solo run, the late queries must start producing
    // with their own window numbering, and the whole construction must be
    // deterministic (two identical runs agree exactly).
    let (a, b, events) = fixture(1_500, 23);
    let expected_a = run_sequential(&a, &events).complex_events;
    assert!(!expected_a.is_empty());

    let run_once = || {
        let (mut engine, ids) = multi_session(&[&a], SpectreConfig::with_instances(2), false);
        engine.push_batch(events[..750].to_vec());
        let late_same = engine.deploy_query(&a).expect("deploy same-spec");
        let late_diff = engine.deploy_query(&b).expect("deploy different-spec");
        assert_eq!(engine.query_ids(), vec![ids[0], late_same, late_diff]);
        engine.push_batch(events[750..].to_vec());
        let report = engine.try_finish().expect("finish");
        (ids[0], late_same, late_diff, report)
    };

    let (q0, late_same, late_diff, report) = run_once();
    assert_same_output("original query", query_outputs(&report, q0), &expected_a);
    let late = query_outputs(&report, late_same);
    assert!(
        !late.is_empty(),
        "a query deployed at the half-way point still sees half the stream"
    );
    // Window ids are query-local: the late query numbers its own windows
    // from zero, so having seen only a suffix of the group's windows, its
    // ids stay strictly below the full run's.
    let max_late = late.iter().map(|ce| ce.window_id).max().unwrap();
    let max_full = expected_a.iter().map(|ce| ce.window_id).max().unwrap();
    assert!(
        max_late < max_full,
        "late ids {max_late} < full ids {max_full}"
    );

    let (_, late_same2, late_diff2, report2) = run_once();
    assert_same_output(
        "late same-spec query is deterministic",
        query_outputs(&report2, late_same2),
        query_outputs(&report, late_same),
    );
    assert_same_output(
        "late different-spec query is deterministic",
        query_outputs(&report2, late_diff2),
        query_outputs(&report, late_diff),
    );
}

#[test]
fn deploying_during_a_disordered_burst_matches_solo_runs() {
    // Queries deployed *while a disordered burst is still parked in the
    // reorder buffer* must match their solo runs over the whole stream: a
    // punctuated stage ingests nothing before the first watermark, so the
    // late deployments still see every event once the buffer flushes — and
    // the original query's output is untouched by the mid-burst deploys.
    let (a, b, events) = fixture(1_500, 43);
    let expected_a = run_sequential(&a, &events).complex_events;
    let expected_b = run_sequential(&b, &events).complex_events;
    assert!(!expected_a.is_empty() && !expected_b.is_empty());
    let shuffled = bounded_shuffle(&events, 60_000, 7);
    assert_ne!(shuffled, events, "the burst must actually be disordered");

    let reorder = ReorderConfig::bounded(0)
        .with_watermark(WatermarkPolicy::Punctuated)
        .with_capacity(2_048);
    let config = SpectreConfig {
        reorder: Some(reorder),
        ..SpectreConfig::with_instances(2)
    };
    let (mut engine, ids) = multi_session(&[&a], config, false);
    engine.push_batch(shuffled[..750].to_vec());
    assert_eq!(
        engine.events_ingested(),
        0,
        "a punctuated stage parks the burst in the buffer"
    );
    let late_same = engine.deploy_query(&a).expect("deploy same-spec");
    let late_diff = engine.deploy_query(&b).expect("deploy different-spec");
    engine.push_batch(shuffled[750..].to_vec());
    let report = engine.try_finish().expect("finish");
    assert_same_output("original a", query_outputs(&report, ids[0]), &expected_a);
    assert_same_output(
        "mid-burst same-spec deploy",
        query_outputs(&report, late_same),
        &expected_a,
    );
    assert_same_output(
        "mid-burst different-spec deploy",
        query_outputs(&report, late_diff),
        &expected_b,
    );
    assert_eq!(report.metrics.late_events_dropped, 0);
    assert_eq!(report.input_events, 1_500);
}

#[test]
fn retiring_during_a_disordered_burst_matches_solo_runs() {
    // The mirror image of the deploy-mid-burst test: retire a query *while
    // a disordered burst is still parked in the reorder buffer*. The
    // punctuated stage has ingested nothing yet, so the retired query saw
    // no event of the burst — and the survivors' outputs over the whole
    // stream must stay bit-identical to their solo runs.
    let (a, b, events) = fixture(1_500, 47);
    let expected_a = run_sequential(&a, &events).complex_events;
    let expected_b = run_sequential(&b, &events).complex_events;
    assert!(!expected_a.is_empty() && !expected_b.is_empty());
    let shuffled = bounded_shuffle(&events, 60_000, 7);
    assert_ne!(shuffled, events, "the burst must actually be disordered");

    let reorder = ReorderConfig::bounded(0)
        .with_watermark(WatermarkPolicy::Punctuated)
        .with_capacity(2_048);
    let config = SpectreConfig {
        reorder: Some(reorder),
        ..SpectreConfig::with_instances(2)
    };
    let (mut engine, ids) = multi_session(&[&a, &a, &b], config, false);
    engine.push_batch(shuffled[..750].to_vec());
    assert_eq!(
        engine.events_ingested(),
        0,
        "a punctuated stage parks the burst in the buffer"
    );
    let drained = engine.retire_query(ids[1]).expect("retire mid-burst");
    assert!(
        drained.is_empty(),
        "nothing was ingested, so the retired query had committed nothing"
    );
    engine.push_batch(shuffled[750..].to_vec());
    let report = engine.try_finish().expect("finish");
    assert_same_output("survivor a", query_outputs(&report, ids[0]), &expected_a);
    assert_same_output("survivor b", query_outputs(&report, ids[2]), &expected_b);
    assert!(
        !report.queries.contains_key(&ids[1]),
        "retired queries do not reappear in the report"
    );
    assert_eq!(report.metrics.late_events_dropped, 0);
    assert_eq!(report.input_events, 1_500);
}

#[test]
fn retiring_mid_stream_leaves_surviving_queries_unchanged() {
    let (a, _, events) = fixture(1_500, 31);
    let expected = run_sequential(&a, &events).complex_events;
    assert!(!expected.is_empty());

    let (mut engine, ids) = multi_session(&[&a, &a], SpectreConfig::with_instances(2), false);
    engine.push_batch(events[..750].to_vec());
    let drained = engine.retire_query(ids[1]).expect("retire deployed query");
    // What the retired query had committed by then is a clean prefix of
    // its (= the solo) output stream — retirement loses nothing that was
    // already confirmed, and invents nothing.
    assert!(
        expected.starts_with(&drained),
        "retired query's drained outputs are a prefix of its solo stream"
    );
    engine.push_batch(events[750..].to_vec());
    let report = engine.try_finish().expect("finish");
    assert_same_output("survivor", query_outputs(&report, ids[0]), &expected);
    assert!(
        !report.queries.contains_key(&ids[1]),
        "retired queries do not reappear in the report"
    );
    // The survivor alone holds every remaining window: each store buffer
    // was released exactly once by the retire and once by the survivor.
    assert!(report.metrics.windows_retired > 0);
}

#[test]
fn aggregate_metrics_are_the_sum_of_per_query_shares() {
    let (a, b, events) = fixture(1_200, 37);
    let (engine, ids) = multi_session(&[&a, &a, &b], SpectreConfig::with_instances(3), false);
    let report = engine.run(events);
    assert_eq!(report.queries.len(), ids.len());
    let total = report.metrics;
    // Every logically-per-query counter must decompose exactly: the
    // aggregate is the sum of the per-query shares, nothing double-counted
    // and nothing attributed to the void. Engine-scoped counters
    // (sched_cycles, idle/stalled steps, store_windows_opened) and the
    // per-tree gauge max_tree_versions are excluded by design.
    macro_rules! assert_decomposes {
        ($($field:ident),+ $(,)?) => {$(
            let sum: u64 = report.queries.values().map(|q| q.metrics.$field).sum();
            assert_eq!(
                total.$field, sum,
                concat!(stringify!($field), " must equal the sum of per-query shares"),
            );
        )+};
    }
    assert_decomposes!(
        events_processed,
        events_suppressed,
        cgs_created,
        cgs_completed,
        cgs_abandoned,
        versions_created,
        versions_dropped,
        versions_materialized,
        lazy_versions_dropped,
        predictor_refreshes,
        predictor_refresh_nanos,
        rollbacks,
        windows_retired,
        checkpoints_taken,
        checkpoint_restores,
        outputs_emitted,
        events_reordered,
        late_events_dropped,
        late_events_admitted,
        watermarks_advanced,
    );
    assert!(total.outputs_emitted > 0, "the run produced outputs");
    assert_eq!(
        total.outputs_emitted as usize,
        report.complex_events.len(),
        "nothing was drained, so emitted == reported"
    );
}
