//! Parser integration: the paper's Fig. 9 queries written in the extended
//! `MATCH_RECOGNIZE` notation must behave identically to the programmatic
//! builders in `spectre_query::queries`.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{run_simulated, SpectreConfig};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_integration::fmt_all;
use spectre_query::{parse_query, queries, ConsumptionPolicy};

fn q1_text(q: usize, ws: u64) -> String {
    let mut pattern = String::from("MLE");
    let mut defines =
        String::from("MLE AS (MLE.closePrice > MLE.openPrice AND MLE.leading == TRUE)");
    let mut consume = String::from("MLE");
    for i in 1..=q {
        pattern.push_str(&format!(" RE{i}"));
        defines.push_str(&format!(
            ",\n  RE{i} AS (RE{i}.closePrice > RE{i}.openPrice)"
        ));
        consume.push_str(&format!(" RE{i}"));
    }
    format!(
        "PATTERN ({pattern})\nDEFINE\n  {defines}\nWITHIN {ws} EVENTS FROM MLE\nCONSUME ({consume})"
    )
}

#[test]
fn parsed_q1_behaves_like_builder_q1() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2000, 83), &mut schema).collect();
    let built = Arc::new(queries::q1(&mut schema, 3, 200, Default::default()));
    let parsed = Arc::new(parse_query(&q1_text(3, 200), &mut schema).unwrap());

    assert_eq!(parsed.pattern().step_count(), built.pattern().step_count());
    // `CONSUME (MLE RE1 …)` lists every element: equivalent to `All`.
    match parsed.consumption() {
        ConsumptionPolicy::Selected(names) => assert_eq!(names.len(), 4),
        other => panic!("expected Selected covering all elements, got {other:?}"),
    }

    let out_built = run_sequential(&built, &events).complex_events;
    let out_parsed = run_sequential(&parsed, &events).complex_events;
    assert_eq!(fmt_all(&out_parsed), fmt_all(&out_built));
}

#[test]
fn parsed_q2_behaves_like_builder_q2() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1500, 89), &mut schema).collect();
    let built = Arc::new(queries::q2(&mut schema, 60.0, 140.0, 300, 60));
    let text = "
PATTERN (A B+ C D+ E F+ G H+ I J+ K L+ M)
DEFINE
  A AS (A.closePrice < 60),
  B AS (B.closePrice > 60 AND B.closePrice < 140),
  C AS (C.closePrice > 140),
  D AS (D.closePrice > 60 AND D.closePrice < 140),
  E AS (E.closePrice < 60),
  F AS (F.closePrice > 60 AND F.closePrice < 140),
  G AS (G.closePrice > 140),
  H AS (H.closePrice > 60 AND H.closePrice < 140),
  I AS (I.closePrice < 60),
  J AS (J.closePrice > 60 AND J.closePrice < 140),
  K AS (K.closePrice > 140),
  L AS (L.closePrice > 60 AND L.closePrice < 140),
  M AS (M.closePrice < 60)
WITHIN 300 EVENTS FROM EVERY 60 EVENTS
CONSUME ALL";
    let parsed = Arc::new(parse_query(text, &mut schema).unwrap());
    let out_built = run_sequential(&built, &events).complex_events;
    let out_parsed = run_sequential(&parsed, &events).complex_events;
    assert_eq!(fmt_all(&out_parsed), fmt_all(&out_built));
}

#[test]
fn parsed_query_runs_under_speculation() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1500, 97), &mut schema).collect();
    let parsed = Arc::new(parse_query(&q1_text(3, 150), &mut schema).unwrap());
    let expected = run_sequential(&parsed, &events).complex_events;
    let report = run_simulated(&parsed, events, &SpectreConfig::with_instances(4));
    assert_eq!(fmt_all(&report.complex_events), fmt_all(&expected));
}

#[test]
fn parse_errors_carry_positions() {
    let mut schema = Schema::new();
    let err = parse_query("PATTERN (A", &mut schema).unwrap_err();
    assert!(err.pos <= "PATTERN (A".len());
    assert!(!err.msg.is_empty());
    let err2 = parse_query("PATTERN (A) WITHIN x EVENTS FROM A", &mut schema).unwrap_err();
    assert!(!err2.msg.is_empty());
}
