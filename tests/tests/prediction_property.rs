//! Property-based tests for the prediction substrate: the stochastic-matrix
//! kernel and the Markov completion-probability model (paper Fig. 5).

use proptest::prelude::*;
use spectre_core::markov::{MarkovConfig, MarkovModel};
use spectre_core::matrix::Matrix;

/// Builds a row-stochastic matrix from arbitrary non-negative rows.
fn stochastic(rows: Vec<Vec<f64>>) -> Matrix {
    let n = rows.len();
    let mut m = Matrix::zeros(n);
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            m[(i, j)] = v;
        }
    }
    m.row_normalize();
    m
}

fn rows_strategy(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, n..=n), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Products of row-stochastic matrices are row-stochastic.
    #[test]
    fn products_stay_stochastic(a in rows_strategy(4), b in rows_strategy(4)) {
        let (a, b) = (stochastic(a), stochastic(b));
        prop_assume!(a.is_row_stochastic(1e-9) && b.is_row_stochastic(1e-9));
        let c = a.multiply(&b);
        prop_assert!(c.is_row_stochastic(1e-6));
    }

    /// Powers of row-stochastic matrices are row-stochastic, and power(1)
    /// is the matrix itself.
    #[test]
    fn powers_stay_stochastic(a in rows_strategy(3), p in 1u32..20) {
        let a = stochastic(a);
        prop_assume!(a.is_row_stochastic(1e-9));
        let ap = a.power(p);
        prop_assert!(ap.is_row_stochastic(1e-6));
        let a1 = a.power(1);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((a1[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    /// Interpolation of stochastic matrices is stochastic and bounded by
    /// its endpoints entrywise.
    #[test]
    fn lerp_is_bounded(a in rows_strategy(3), b in rows_strategy(3), w in 0.0f64..=1.0) {
        let (a, b) = (stochastic(a), stochastic(b));
        let l = a.lerp(&b, w);
        prop_assert!(l.is_row_stochastic(1e-6));
        for i in 0..3 {
            for j in 0..3 {
                let lo = a[(i, j)].min(b[(i, j)]) - 1e-12;
                let hi = a[(i, j)].max(b[(i, j)]) + 1e-12;
                prop_assert!((lo..=hi).contains(&l[(i, j)]));
            }
        }
    }

    /// The Markov model always returns a probability, whatever it observed.
    #[test]
    fn predictions_are_probabilities(
        transitions in proptest::collection::vec((0u32..6, 0u32..6), 0..300),
        delta in 0usize..6,
        events_left in -10i64..500,
    ) {
        let mut model = MarkovModel::new(5, MarkovConfig { rho: 16, ..Default::default() });
        model.observe_batch(&transitions);
        model.refresh_if_due();
        let p = model.completion_probability(delta, events_left);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    /// δ = 0 means the pattern already completed: probability 1 regardless
    /// of history.
    #[test]
    fn zero_delta_is_certain(
        transitions in proptest::collection::vec((0u32..4, 0u32..4), 0..100),
    ) {
        let mut model = MarkovModel::new(3, MarkovConfig { rho: 8, ..Default::default() });
        model.observe_batch(&transitions);
        model.refresh_if_due();
        prop_assert!(model.completion_probability(0, 10) > 0.999);
    }

    /// The vectorized predictor (completion-probability columns advanced
    /// via v_{i+1} = T^ℓ·v_i) is output-identical to the dense
    /// matrix-power formulation, whatever transitions were observed and
    /// however the refreshes were interleaved.
    #[test]
    fn vectorized_predictor_matches_matrix_powers(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u32..6, 0u32..6), 0..60), 0..5),
        delta in 0usize..6,
        events_left in -5i64..400,
    ) {
        let mut model = MarkovModel::new(
            5,
            MarkovConfig { rho: 16, ell: 5, max_levels: 24, ..Default::default() },
        );
        // Refresh history: each round of observations is followed by a
        // refresh opportunity, so the equivalence holds across arbitrary
        // smoothing states, not just the prior.
        for round in &rounds {
            model.observe_batch(round);
            model.refresh_if_due();
        }
        let fast = model.completion_probability(delta, events_left);
        let slow = model.completion_probability_via_matrix_powers(delta, events_left);
        prop_assert!((fast - slow).abs() <= 1e-9, "fast {fast} vs slow {slow}");
    }

    /// More remaining events never decrease the completion probability
    /// (reaching the absorbing state is monotone in horizon length).
    #[test]
    fn monotone_in_horizon(
        transitions in proptest::collection::vec((0u32..4, 0u32..4), 0..200),
        delta in 1usize..4,
    ) {
        let mut model = MarkovModel::new(3, MarkovConfig { rho: 16, ..Default::default() });
        // Make observed transitions monotone toward completion: δ never
        // increases within a match (the matcher only moves δ downward or
        // abandons), so filter the arbitrary pairs accordingly.
        let monotone: Vec<(u32, u32)> =
            transitions.into_iter().filter(|(a, b)| b <= a).collect();
        model.observe_batch(&monotone);
        model.refresh_if_due();
        let mut last = 0.0f64;
        for n in [1i64, 5, 20, 80, 320] {
            let p = model.completion_probability(delta, n);
            prop_assert!(p >= last - 1e-9, "p({n}) = {p} < {last}");
            last = p;
        }
    }
}

#[test]
fn vectorized_predictor_matches_matrix_powers_on_grid() {
    // Deterministic (δ × events_left × refresh-history) grid, denser than
    // the property sweep and checked at every refresh depth: after each
    // refresh the maintained vectors must agree with the dense powers at
    // every state and horizon — including the interpolation endpoints
    // (multiples of ℓ), their neighbours, and the saturation tail.
    let mut model = MarkovModel::new(
        4,
        MarkovConfig {
            rho: 8,
            ell: 4,
            max_levels: 16,
            ..Default::default()
        },
    );
    let horizons: Vec<i64> = vec![-3, 0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000];
    let assert_grid = |m: &MarkovModel, history: usize| {
        for delta in 0..=4usize {
            for &n in &horizons {
                let fast = m.completion_probability(delta, n);
                let slow = m.completion_probability_via_matrix_powers(delta, n);
                assert!(
                    (fast - slow).abs() <= 1e-9,
                    "history={history} delta={delta} n={n}: {fast} vs {slow}"
                );
            }
        }
    };
    assert_grid(&model, 0);
    // Refresh history: advancing, stalling and mixed rounds, each ending
    // in one or more smoothing steps.
    let rounds: Vec<Vec<(u32, u32)>> = vec![
        (0..8).map(|i| (4 - (i % 4), 3 - (i % 4))).collect(),
        (0..24)
            .map(|i| (3, if i % 3 == 0 { 3 } else { 2 }))
            .collect(),
        (0..8).map(|i| (2 - (i % 2), 2 - (i % 2))).collect(),
        (0..16).map(|i| (1, (i % 2) as u32)).collect(),
    ];
    for (history, round) in rounds.iter().enumerate() {
        model.observe_batch(round);
        model.refresh_if_due();
        assert_grid(&model, history + 1);
    }
}

#[test]
fn model_learns_the_two_extremes() {
    // Always-advancing patterns → probability near 1 with enough horizon;
    // never-advancing patterns → probability near 0.
    let mut always = MarkovModel::new(
        3,
        MarkovConfig {
            rho: 4,
            ..Default::default()
        },
    );
    for _ in 0..64 {
        always.observe(3, 2);
        always.observe(2, 1);
        always.observe(1, 0);
    }
    always.refresh_if_due();
    assert!(always.completion_probability(3, 50) > 0.95);

    // The uninformative prior decays geometrically with each smoothing
    // refresh (the splitter refreshes every maintenance cycle), so feed the
    // observations in rounds.
    let mut never = MarkovModel::new(
        3,
        MarkovConfig {
            rho: 4,
            ..Default::default()
        },
    );
    for _ in 0..16 {
        for _ in 0..4 {
            never.observe(3, 3);
            never.observe(2, 2);
            never.observe(1, 1);
        }
        never.refresh_if_due();
    }
    assert!(never.completion_probability(3, 50) < 0.2);
}
