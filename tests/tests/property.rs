//! Property-based differential testing: for arbitrary streams, window
//! geometries, pattern lengths and consumption policies, every engine in the
//! workspace must agree with the sequential reference, and consumption
//! invariants must hold.

use std::sync::Arc;

use proptest::prelude::*;
use spectre_baselines::{run_sequential, run_waitful, TrexEngine};
use spectre_core::{run_simulated, PredictorKind, SpectreConfig};
use spectre_events::{AttrKey, Event, Schema};
use spectre_integration::fmt_all;
use spectre_query::{ConsumptionPolicy, Expr, Pattern, Query, WindowSpec};

/// Builds a stream over a small value alphabet.
fn stream(xs: &[u8]) -> Vec<Event> {
    let mut schema = Schema::new();
    let ty = schema.event_type("E");
    let x = schema.attr("x");
    xs.iter()
        .enumerate()
        .map(|(i, &v)| {
            Event::builder(ty)
                .seq(i as u64)
                .ts(i as u64 * 10)
                .attr(x, f64::from(v))
                .build()
        })
        .collect()
}

/// A sequence pattern matching values `0, 1, …, len-1`.
fn seq_query(len: usize, ws: u64, slide: u64, cp: ConsumptionPolicy) -> Arc<Query> {
    let x = AttrKey::new(0); // first interned attr in `stream`'s schema
    let mut b = Pattern::builder();
    for i in 0..len {
        b = b.one(
            &format!("S{i}"),
            Expr::current(x).eq_(Expr::value(f64::from(i as u8))),
        );
    }
    Arc::new(
        Query::builder("prop")
            .pattern(b.build().unwrap())
            .window(WindowSpec::count_sliding(ws, slide).unwrap())
            .consumption(cp)
            .build()
            .unwrap(),
    )
}

fn consumption_strategy() -> impl Strategy<Value = ConsumptionPolicy> {
    prop_oneof![
        Just(ConsumptionPolicy::None),
        Just(ConsumptionPolicy::All),
        Just(ConsumptionPolicy::Selected(vec!["S0".into()])),
        Just(ConsumptionPolicy::Selected(vec!["S0".into(), "S1".into()])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// The central theorem (paper §2.3): speculative parallel output equals
    /// sequential output — for arbitrary streams and window geometries.
    #[test]
    fn sim_equals_sequential(
        xs in proptest::collection::vec(0u8..4, 1..200),
        len in 2usize..4,
        ws in 4u64..40,
        slide_frac in 1u64..4,
        k in prop_oneof![Just(1usize), Just(2), Just(5)],
        cp in consumption_strategy(),
    ) {
        let slide = (ws / (slide_frac + 1)).max(1);
        let events = stream(&xs);
        let query = seq_query(len, ws, slide, cp);
        let expected = run_sequential(&query, &events).complex_events;
        let report = run_simulated(&query, events, &SpectreConfig::with_instances(k));
        prop_assert_eq!(fmt_all(&report.complex_events), fmt_all(&expected));
    }

    /// Wrong fixed predictions never change the output, only the schedule.
    #[test]
    fn sim_with_fixed_predictor_equals_sequential(
        xs in proptest::collection::vec(0u8..4, 1..150),
        p in 0.0f64..=1.0,
        ws in 4u64..30,
    ) {
        let events = stream(&xs);
        let query = seq_query(3, ws, (ws / 3).max(1), ConsumptionPolicy::All);
        let expected = run_sequential(&query, &events).complex_events;
        let config = SpectreConfig {
            instances: 3,
            predictor: PredictorKind::Fixed(p),
            ..Default::default()
        };
        let report = run_simulated(&query, events, &config);
        prop_assert_eq!(fmt_all(&report.complex_events), fmt_all(&expected));
    }

    /// The automaton engine is an independent implementation of the same
    /// semantics.
    #[test]
    fn trex_equals_sequential(
        xs in proptest::collection::vec(0u8..4, 1..200),
        len in 2usize..4,
        ws in 4u64..40,
        cp in consumption_strategy(),
    ) {
        let events = stream(&xs);
        let query = seq_query(len, ws, (ws / 2).max(1), cp);
        let expected = run_sequential(&query, &events).complex_events;
        let trex = TrexEngine::new(Arc::clone(&query)).run(&events);
        prop_assert_eq!(fmt_all(&trex.complex_events), fmt_all(&expected));
    }

    /// The wait-based model produces sequential output with a speedup in
    /// `[1, k]`.
    #[test]
    fn waitful_is_correct_and_bounded(
        xs in proptest::collection::vec(0u8..4, 1..150),
        ws in 4u64..30,
        k in 1usize..8,
    ) {
        let events = stream(&xs);
        let query = seq_query(2, ws, (ws / 2).max(1), ConsumptionPolicy::All);
        let expected = run_sequential(&query, &events).complex_events;
        let r = run_waitful(&query, &events, k);
        prop_assert_eq!(fmt_all(&r.complex_events), fmt_all(&expected));
        prop_assert!(r.speedup >= 1.0 - 1e-9);
        prop_assert!(r.speedup <= k as f64 + 1e-9);
    }

    /// Consumption invariant: under `All`, no event participates in two
    /// complex events; under `None`, re-use across windows is allowed but
    /// output within one window never repeats a full constituent set.
    #[test]
    fn consumption_uniqueness(
        xs in proptest::collection::vec(0u8..4, 1..200),
        ws in 4u64..40,
    ) {
        let events = stream(&xs);
        let query = seq_query(2, ws, (ws / 2).max(1), ConsumptionPolicy::All);
        let r = run_sequential(&query, &events);
        let mut seen = std::collections::HashSet::new();
        for ce in &r.complex_events {
            for &c in &ce.constituents {
                prop_assert!(seen.insert(c), "event {} consumed twice", c);
            }
        }
    }

    /// Complex events are emitted in window order with in-window detection
    /// order (ts non-decreasing within a window is not guaranteed, but
    /// window ids are non-decreasing).
    #[test]
    fn output_window_order(
        xs in proptest::collection::vec(0u8..4, 1..200),
        ws in 4u64..40,
        k in 1usize..5,
    ) {
        let events = stream(&xs);
        let query = seq_query(2, ws, (ws / 2).max(1), ConsumptionPolicy::All);
        let report = run_simulated(&query, events, &SpectreConfig::with_instances(k));
        let ids: Vec<u64> = report.complex_events.iter().map(|c| c.window_id).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] <= w[1]));
    }
}
