//! Shuffle-equivalence battery for the watermark-driven reorder stage: any
//! stream whose disorder stays within the configured `max_delay` must
//! produce output **bit-identical** to the in-order run — across the
//! k × batch × lazy × {sim, threaded} matrix and under multi-query
//! hosting — while streams that overrun the bound resolve deterministically
//! through the late policy, with the drop count reported exactly.

use std::sync::Arc;

use proptest::prelude::*;
use spectre_baselines::run_sequential;
use spectre_core::reorder::{Offer, ReorderBuffer};
use spectre_core::{
    LatePolicy, QueryId, ReorderConfig, Report, SpectreConfig, SpectreEngine, WatermarkPolicy,
};
use spectre_datasets::{bounded_shuffle, max_disorder, NyseConfig, NyseGenerator};
use spectre_events::{AttrKey, Event, EventType, Schema};
use spectre_integration::assert_same_output;
use spectre_query::queries::{self, Direction};
use spectre_query::{ComplexEvent, ConsumptionPolicy, Expr, Pattern, Query, WindowSpec};

/// NYSE-small stream (timestamps strictly increasing in 1200-tick steps)
/// plus two fixture queries sharing its schema: `a` (the standard Q1) and
/// `b` with a different window spec.
fn fixture(events: usize, seed: u64) -> (Arc<Query>, Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(events, seed), &mut schema).collect();
    let a = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let b = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
    (a, b, events)
}

fn run_reordered(
    query: &Arc<Query>,
    events: Vec<Event>,
    config: SpectreConfig,
    threaded: bool,
) -> Report {
    let builder = SpectreEngine::builder(query).config(config);
    let engine = if threaded {
        builder.threaded().build()
    } else {
        builder.simulated().build()
    };
    engine.run(events)
}

#[test]
fn bounded_shuffles_are_bit_identical_across_the_matrix() {
    // The tentpole theorem: for disorder within max_delay, the reordered
    // run equals the in-order run bit for bit — for every combination of
    // parallelism degree, hand-off batch size, lazy toggle and execution
    // mode, and for more than one disorder magnitude.
    let (query, _, events) = fixture(1_200, 17);
    let expected = run_sequential(&query, &events).complex_events;
    assert!(!expected.is_empty());
    for delay in [2_400u64, 12_000] {
        let shuffled = bounded_shuffle(&events, delay, 99);
        assert!(max_disorder(&shuffled) <= delay);
        assert_ne!(shuffled, events, "the shuffle must actually disorder");
        for threaded in [false, true] {
            for k in [1usize, 2, 4] {
                for batch in [1usize, 64] {
                    for lazy in [true, false] {
                        let config = SpectreConfig::with_batching(k, batch, 8)
                            .with_lazy_materialization(lazy)
                            .with_reorder(delay);
                        let report = run_reordered(&query, shuffled.clone(), config, threaded);
                        let tag = format!(
                            "d={delay} threaded={threaded} k={k} batch={batch} lazy={lazy}"
                        );
                        assert_same_output(&tag, &report.complex_events, &expected);
                        assert_eq!(report.input_events, 1_200, "{tag}");
                        assert_eq!(
                            report.metrics.late_events_dropped, 0,
                            "{tag}: within-bound disorder must lose nothing"
                        );
                        assert!(
                            report.metrics.events_reordered > 0,
                            "{tag}: the stage must have repaired something"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn reorder_off_reproduces_the_direct_path() {
    // The knob is opt-in: an in-order stream through a reorder-less session
    // and through a reorder-enabled session produce identical reports, and
    // the reorder counters stay zero without the stage.
    let (query, _, events) = fixture(1_000, 23);
    let direct = run_reordered(
        &query,
        events.clone(),
        SpectreConfig::with_instances(2),
        false,
    );
    assert_eq!(direct.metrics.events_reordered, 0);
    assert_eq!(direct.metrics.watermarks_advanced, 0);
    let staged = run_reordered(
        &query,
        events,
        SpectreConfig::with_instances(2).with_reorder(0),
        false,
    );
    assert_same_output(
        "reorder(0) on an in-order stream",
        &staged.complex_events,
        &direct.complex_events,
    );
    assert_eq!(staged.metrics.events_reordered, 0);
    assert_eq!(staged.input_events, direct.input_events);
}

#[test]
fn multi_query_hosting_survives_a_bounded_shuffle() {
    // Three hosted queries (two same-spec, one different) over a shuffled
    // stream: every per-query stream equals its solo in-order run, and the
    // four reorder counters decompose exactly (aggregate = sum of shares =
    // N × the single share, since all queries were deployed up front).
    let (a, b, events) = fixture(1_200, 31);
    let expected_a = run_sequential(&a, &events).complex_events;
    let expected_b = run_sequential(&b, &events).complex_events;
    assert!(!expected_a.is_empty() && !expected_b.is_empty());
    let delay = 6_000u64;
    let shuffled = bounded_shuffle(&events, delay, 3);

    let mut builder =
        SpectreEngine::multi_builder().config(SpectreConfig::with_instances(2).with_reorder(delay));
    let ids: Vec<QueryId> = [&a, &a, &b].iter().map(|q| builder.add_query(q)).collect();
    let report = builder.build().run(shuffled);
    let outputs = |qid: QueryId| -> &[ComplexEvent] { &report.queries[&qid].complex_events };
    assert_same_output("hosted a#0", outputs(ids[0]), &expected_a);
    assert_same_output("hosted a#1", outputs(ids[1]), &expected_a);
    assert_same_output("hosted b", outputs(ids[2]), &expected_b);

    let shares: Vec<_> = report.queries.values().map(|q| q.metrics).collect();
    type FieldFn = fn(&spectre_core::MetricsSnapshot) -> u64;
    let fields: [FieldFn; 4] = [
        |m| m.events_reordered,
        |m| m.late_events_dropped,
        |m| m.late_events_admitted,
        |m| m.watermarks_advanced,
    ];
    for field in fields {
        let per: Vec<u64> = shares.iter().map(field).collect();
        assert!(
            per.windows(2).all(|w| w[0] == w[1]),
            "queries deployed up front see identical reorder shares: {per:?}"
        );
        assert_eq!(
            field(&report.metrics),
            per.iter().sum::<u64>(),
            "aggregate reorder counters must decompose"
        );
    }
    assert!(report.metrics.events_reordered > 0);
    assert_eq!(report.metrics.late_events_dropped, 0);
}

/// Synthetic stream over a small value alphabet with strictly increasing
/// timestamps (`ts = i * 10`), so sorted-by-timestamp recovers the
/// original order exactly.
fn alphabet_stream(xs: &[u8]) -> Vec<Event> {
    let mut schema = Schema::new();
    let ty = schema.event_type("E");
    let x = schema.attr("x");
    xs.iter()
        .enumerate()
        .map(|(i, &v)| {
            Event::builder(ty)
                .seq(i as u64)
                .ts(i as u64 * 10)
                .attr(x, f64::from(v))
                .build()
        })
        .collect()
}

/// A 2-step sequence pattern over the alphabet stream.
fn alphabet_query() -> Arc<Query> {
    let x = AttrKey::new(0);
    Arc::new(
        Query::builder("reorder-prop")
            .pattern(
                Pattern::builder()
                    .one("A", Expr::current(x).eq_(Expr::value(0.0)))
                    .one("B", Expr::current(x).eq_(Expr::value(1.0)))
                    .build()
                    .unwrap(),
            )
            .window(WindowSpec::count_sliding(8, 4).unwrap())
            .consumption(ConsumptionPolicy::All)
            .build()
            .unwrap(),
    )
}

/// Applies proptest-chosen per-event delay offsets (each `<= bound`) and
/// stably re-sorts by `ts + offset` — the bounded-disorder construction
/// with adversarial rather than uniform offsets.
fn offset_shuffle(events: &[Event], offsets: &[u64]) -> Vec<Event> {
    let mut keyed: Vec<(u64, Event)> = events
        .iter()
        .zip(offsets)
        .map(|(ev, off)| (ev.ts() + off, ev.clone()))
        .collect();
    keyed.sort_by_key(|(key, _)| *key);
    keyed.into_iter().map(|(_, ev)| ev).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Satellite property 1a: any within-`max_delay` shuffle is
    /// bit-identical to the sorted (= original) stream.
    #[test]
    fn within_delay_shuffles_are_bit_identical(
        xs in proptest::collection::vec(0u8..3, 8..80),
        offsets in proptest::collection::vec(0u64..=50, 80),
        k in prop_oneof![Just(1usize), Just(2)],
    ) {
        let events = alphabet_stream(&xs);
        let query = alphabet_query();
        let shuffled = offset_shuffle(&events, &offsets[..events.len()]);
        prop_assert!(max_disorder(&shuffled) <= 50);
        let expected = run_sequential(&query, &events).complex_events;
        let report = run_reordered(
            &query,
            shuffled,
            SpectreConfig::with_instances(k).with_reorder(50),
            false,
        );
        prop_assert_eq!(&report.complex_events, &expected);
        prop_assert_eq!(report.metrics.late_events_dropped, 0);
        prop_assert_eq!(report.input_events, events.len() as u64);
    }

    /// Satellite property 1b: beyond-delay disorder under `LatePolicy::Drop`
    /// loses exactly the events a scalar watermark oracle predicts — and
    /// the survivors still produce the in-order output over themselves.
    #[test]
    fn beyond_delay_drops_are_counted_exactly(
        xs in proptest::collection::vec(0u8..3, 8..80),
        offsets in proptest::collection::vec(0u64..=300, 80),
        delay in 0u64..40,
    ) {
        let events = alphabet_stream(&xs);
        let query = alphabet_query();
        let shuffled = offset_shuffle(&events, &offsets[..events.len()]);

        // Scalar oracle for the period-1 watermark: an arrival is late iff
        // its timestamp is below (max accepted timestamp so far - delay);
        // late arrivals never advance the watermark.
        let mut max_seen: Option<u64> = None;
        let mut survivors = Vec::new();
        let mut drops = 0u64;
        for ev in &shuffled {
            if let Some(m) = max_seen {
                if ev.ts() < m.saturating_sub(delay) {
                    drops += 1;
                    continue;
                }
            }
            max_seen = Some(max_seen.map_or(ev.ts(), |m| m.max(ev.ts())));
            survivors.push(ev.clone());
        }
        survivors.sort_by_key(Event::ts);
        let expected = run_sequential(&query, &survivors).complex_events;

        let report = run_reordered(
            &query,
            shuffled,
            SpectreConfig::with_instances(2).with_reorder(delay),
            false,
        );
        // Single query: the aggregate counter is the exact drop count.
        prop_assert_eq!(report.metrics.late_events_dropped, drops);
        prop_assert_eq!(report.input_events, survivors.len() as u64);
        prop_assert_eq!(&report.complex_events, &expected);
    }

    /// Satellite property: buffer invariants under arbitrary drive — the
    /// buffer never emits below a passed watermark, never emits out of
    /// timestamp order, never exceeds its capacity, and rejects exactly
    /// when full.
    #[test]
    fn buffer_never_violates_watermark_capacity_or_order(
        arrivals in proptest::collection::vec(0u64..200, 1..120),
        delay in 0u64..30,
        capacity in 1usize..16,
        period in 1u64..4,
        admit in prop_oneof![Just(false), Just(true)],
    ) {
        let late_policy = if admit { LatePolicy::Admit } else { LatePolicy::Drop };
        let config = ReorderConfig::bounded(delay)
            .with_watermark(WatermarkPolicy::Periodic { period })
            .with_late_policy(late_policy)
            .with_capacity(capacity);
        let mut buf = ReorderBuffer::new(config);
        let mut last_released: Option<u64> = None;
        let release = |buf: &mut ReorderBuffer, last: &mut Option<u64>| {
            while let Some(ev) = buf.pop_ready() {
                let w = buf.watermark().expect("a release implies a watermark");
                prop_assert!(ev.ts() <= w, "released ts {} above watermark {w}", ev.ts());
                if let Some(prev) = *last {
                    prop_assert!(ev.ts() >= prev, "release order regressed");
                }
                *last = Some(ev.ts());
            }
            Ok(())
        };
        for (seq, ts) in arrivals.iter().enumerate() {
            let ev = Event::builder(EventType::new(0)).seq(seq as u64).ts(*ts).build();
            let was_full = buf.is_full();
            match buf.offer(ev) {
                Offer::Rejected(_) => prop_assert!(was_full, "rejects only when full"),
                Offer::Buffered | Offer::DroppedLate | Offer::AdmittedLate(_) => {}
            }
            prop_assert!(buf.len() <= capacity, "capacity exceeded");
            release(&mut buf, &mut last_released)?;
        }
        buf.finish();
        release(&mut buf, &mut last_released)?;
        prop_assert!(buf.is_empty(), "finish must flush everything");
        let stats = buf.take_stats();
        if !admit {
            prop_assert_eq!(stats.late_admitted, 0);
        } else {
            prop_assert_eq!(stats.late_dropped, 0);
        }
    }
}
