//! End-to-end tests of the spectre-server front-end: N loopback clients
//! streaming strided slices of one seeded stream must merge back into a
//! session bit-identical to a solo engine fed the ordered stream; a
//! client dying mid-stream must leave the survivors undisturbed; the
//! rate limiter, panic isolation, `/metrics` sidecar, and control plane
//! must all hold up under real sockets.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spectre_core::{QueryId, SpectreConfig, SpectreEngine, TenantId};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::{Event, Schema};
use spectre_integration::assert_same_output;
use spectre_query::queries::{self, Direction};
use spectre_query::{ComplexEvent, Query};
use spectre_server::{
    FeedClient, IngestOrder, OverLimitPolicy, RateLimitConfig, Server, ServerConfig, ServerOutcome,
};

/// A seeded NYSE stream plus two queries on different tenants.
fn fixture(events: usize, seed: u64) -> (Schema, Arc<Query>, Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(events, seed), &mut schema).collect();
    let a = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let b = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
    (schema, a, b, events)
}

/// The solo reference: one engine, the ordered stream, end-of-stream.
fn solo_outputs(
    queries: &[(TenantId, Arc<Query>)],
    config: SpectreConfig,
    events: &[Event],
) -> BTreeMap<QueryId, Vec<ComplexEvent>> {
    let mut builder = SpectreEngine::multi_builder();
    for (tenant, query) in queries {
        builder.add_query_for(*tenant, query);
    }
    let report = builder.config(config).build().run(events.to_vec());
    report
        .queries
        .into_iter()
        .map(|(qid, qr)| (qid, qr.complex_events))
        .collect()
}

/// Streams the `index`-of-`stride` slice from its own thread.
fn spawn_client(
    addr: std::net::SocketAddr,
    tenant: u32,
    events: Vec<Event>,
    index: u64,
    stride: u64,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut client = FeedClient::connect(addr, tenant).expect("connect");
        let mut sent = 0u64;
        for event in &events {
            if event.seq() % stride != index {
                continue;
            }
            client.send_event(event).expect("send");
            sent += 1;
        }
        client.finish().expect("finish");
        sent
    })
}

fn drain_and_join(handle: spectre_server::ServerHandle) -> ServerOutcome {
    handle.drain();
    handle.join().expect("server drains cleanly")
}

#[test]
fn strided_clients_merge_bit_identical_to_solo_across_the_matrix() {
    let (schema, a, b, events) = fixture(3_000, 17);
    let queries = vec![(TenantId(0), Arc::clone(&a)), (TenantId(3), Arc::clone(&b))];
    for lazy in [true, false] {
        for k in [1usize, 2] {
            let config = SpectreConfig::with_instances(k).with_lazy_materialization(lazy);
            let expected = solo_outputs(&queries, config.clone(), &events);
            let cfg = ServerConfig {
                engine: config,
                order: IngestOrder::Seq,
                ..ServerConfig::default()
            };
            let handle =
                Server::start(cfg, schema.clone(), queries.clone()).expect("server starts");
            let clients: Vec<_> = (0..3)
                .map(|i| spawn_client(handle.ingest_addr(), 0, events.clone(), i, 3))
                .collect();
            let sent: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
            assert_eq!(sent, events.len() as u64);
            let outcome = drain_and_join(handle);
            assert_eq!(outcome.report.input_events, events.len() as u64);
            for (qid, expected_outputs) in &expected {
                let got = outcome.outputs.get(qid).map(Vec::as_slice).unwrap_or(&[]);
                assert_same_output(
                    &format!("server {qid} k={k} lazy={lazy}"),
                    got,
                    expected_outputs,
                );
            }
        }
    }
}

#[test]
fn mid_stream_disconnect_leaves_survivors_undisturbed() {
    // Seq mode, two strided clients. The even-slice client dies (no BYE)
    // after 300 events; the odd-slice survivor streams to completion. The
    // sequencer flushes past the dead client's gaps, the drain completes,
    // and the books balance exactly.
    let (schema, a, _, events) = fixture(3_000, 17);
    let queries = vec![(TenantId(0), Arc::clone(&a))];
    let cfg = ServerConfig {
        order: IngestOrder::Seq,
        ..ServerConfig::default()
    };
    let handle = Server::start(cfg, schema, queries).expect("server starts");
    let addr = handle.ingest_addr();

    // The survivor streams its whole odd-seq slice concurrently.
    let survivor = spawn_client(addr, 0, events.clone(), 1, 2);

    let mut dying = FeedClient::connect(addr, 0).expect("connect");
    let mut died_after = 0u64;
    for event in events.iter().filter(|e| e.seq() % 2 == 0).take(300) {
        dying.send_event(event).expect("send");
        died_after += 1;
    }
    dying.flush().expect("flush");
    // Let the server consume the flushed events before the rug-pull.
    std::thread::sleep(Duration::from_millis(300));
    dying.abort();

    let survivor_sent = survivor.join().expect("survivor");
    assert_eq!(survivor_sent, events.len() as u64 / 2);

    let counters = handle.counters();
    let outcome = drain_and_join(handle);
    assert_eq!(
        outcome.report.input_events,
        died_after + survivor_sent,
        "every delivered event is ingested, none double-counted"
    );
    assert_eq!(
        counters
            .closed_abnormal
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the rug-pulled client closes abnormally"
    );
    assert_eq!(
        counters
            .closed_clean
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the survivor closes cleanly"
    );
    assert!(
        counters
            .seq_gaps_skipped
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the sequencer skipped the dead client's gaps"
    );
    assert!(
        !outcome.outputs.is_empty(),
        "the survivor's events still match"
    );
}

#[test]
fn rate_limiter_drops_over_budget_events_and_still_returns_credit() {
    let (schema, a, _, events) = fixture(1_000, 17);
    let queries = vec![(TenantId(0), Arc::clone(&a))];
    let cfg = ServerConfig {
        // Arrival order: dropped events must not leave sequencer gaps.
        order: IngestOrder::Arrival,
        rate_limit: Some(RateLimitConfig::per_conn(
            500.0,
            50.0,
            OverLimitPolicy::Drop,
        )),
        // A small window forces several credit round-trips through the
        // dropped-event accounting; an unreturned credit would stall here.
        credit_window: 64,
        ..ServerConfig::default()
    };
    let handle = Server::start(cfg, schema, queries).expect("server starts");
    let mut client = FeedClient::connect(handle.ingest_addr(), 0).expect("connect");
    for event in &events {
        client.send_event(event).expect("send");
    }
    client.finish().expect("finish");
    let counters = handle.counters();
    let outcome = drain_and_join(handle);
    let dropped = counters
        .rate_dropped
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        dropped > 0,
        "a 1000-event burst must overrun 500 eps / burst 50"
    );
    assert_eq!(
        outcome.report.input_events + dropped,
        events.len() as u64,
        "dropped + ingested covers the stream exactly"
    );
}

#[test]
fn a_panicking_connection_is_contained_and_the_server_keeps_serving() {
    let (schema, a, _, events) = fixture(2_000, 17);
    let queries = vec![(TenantId(0), Arc::clone(&a))];
    let cfg = ServerConfig {
        order: IngestOrder::Arrival,
        chaos_panic_tenant: Some(7),
        ..ServerConfig::default()
    };
    let handle = Server::start(cfg, schema, queries).expect("server starts");
    let addr = handle.ingest_addr();

    // The first half of the stream arrives before the chaos client.
    let (first, second) = events.split_at(events.len() / 2);
    let mut good = FeedClient::connect(addr, 0).expect("connect");
    for event in first {
        good.send_event(event).expect("send");
    }
    good.finish().expect("finish");

    // The poisoned tenant's first event panics its connection thread
    // (before the event reaches the engine).
    let mut chaos = FeedClient::connect(addr, 7).expect("connect");
    let _ = chaos.send_event(&events[0]);
    let _ = chaos.flush();
    let deadline = Instant::now() + Duration::from_secs(10);
    let counters = handle.counters();
    while counters
        .panics_caught
        .load(std::sync::atomic::Ordering::Relaxed)
        == 0
    {
        assert!(Instant::now() < deadline, "panic not caught in time");
        std::thread::sleep(Duration::from_millis(20));
    }
    chaos.abort();

    // A fresh client after the panic is served as if nothing happened.
    let mut late = FeedClient::connect(addr, 0).expect("connect");
    for event in second {
        late.send_event(event).expect("send");
    }
    late.finish().expect("finish");

    let outcome = drain_and_join(handle);
    assert_eq!(
        counters
            .panics_caught
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        outcome.report.input_events,
        events.len() as u64,
        "the poisoned client contributed nothing; both good clients count fully"
    );
}

/// Scrapes `GET {path}` off the HTTP sidecar, returning the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("http write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("http read");
    let (headers, body) = response
        .split_once("\r\n\r\n")
        .expect("http response has headers");
    assert!(headers.starts_with("HTTP/1.0"), "{headers}");
    body.to_string()
}

/// Parses one un-labelled metric value out of a Prometheus text body.
fn metric(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|line| {
            let (metric_name, value) = line.split_once(' ')?;
            (metric_name == name).then(|| value.parse().expect("metric value"))
        })
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

/// Sends one control line, returns the reply.
fn control(addr: std::net::SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("control connect");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("control write");
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .expect("control read");
    reply.trim_end().to_string()
}

#[test]
fn control_plane_and_metrics_sidecar_drive_a_live_session() {
    let (schema, a, _, events) = fixture(2_000, 17);
    let queries = vec![(TenantId(0), Arc::clone(&a))];
    let handle = Server::start(ServerConfig::default(), schema, queries).expect("server starts");

    assert_eq!(control(handle.control_addr(), "PING"), "OK pong");
    assert_eq!(http_get(handle.http_addr(), "/healthz"), "ok\n");
    assert!(http_get(handle.http_addr(), "/nope").contains("not found"));

    // Live-deploy a second query for tenant 2 (the parser-grammar text),
    // set its quota, and check the registry.
    let deploy = control(
        handle.control_addr(),
        "DEPLOY TENANT 2 PATTERN (MLE RE1 RE2) \
         DEFINE MLE AS (MLE.closePrice > MLE.openPrice AND MLE.leading == 1), \
         RE1 AS (RE1.closePrice > RE1.openPrice), \
         RE2 AS (RE2.closePrice > RE2.openPrice) \
         WITHIN 2000 EVENTS FROM MLE CONSUME (MLE RE1 RE2)",
    );
    assert_eq!(deploy, "OK deployed q1");
    assert_eq!(
        control(handle.control_addr(), "QUOTA 2 WEIGHT 3"),
        "OK quota set for t2"
    );
    assert_eq!(control(handle.control_addr(), "QUERIES"), "OK q0:t0 q1:t2");
    assert!(control(handle.control_addr(), "BOGUS").starts_with("ERR"));

    let mut client = FeedClient::connect(handle.ingest_addr(), 0).expect("connect");
    for event in &events {
        client.send_event(event).expect("send");
    }
    client.finish().expect("finish");

    // The retired query reports its undrained outputs.
    let retire = control(handle.control_addr(), "RETIRE 1");
    assert!(retire.starts_with("OK retired q1"), "{retire}");

    // STATS is a live snapshot: the splitter may still be pulling the
    // tail of the push queue, so only the shape is asserted here — the
    // exact totals are checked post-drain off /metrics.
    let stats = control(handle.control_addr(), "STATS");
    assert!(stats.starts_with("OK input_events="), "{stats}");
    assert!(stats.ends_with("queries=1"), "{stats}");

    // DRAIN over the control socket; the sidecar reports it immediately.
    assert_eq!(control(handle.control_addr(), "DRAIN"), "OK draining");
    assert_eq!(http_get(handle.http_addr(), "/healthz"), "draining\n");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !handle.is_finished() {
        assert!(Instant::now() < deadline, "drain did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The post-drain scrape is frozen at the final report: the aggregate
    // matches, and the per-query shares sum to it.
    let body = http_get(handle.http_addr(), "/metrics");
    assert_eq!(metric(&body, "spectre_engine_input_events"), 2_000);
    assert_eq!(metric(&body, "spectre_server_finished"), 1);
    let aggregate = metric(&body, "spectre_engine_events_processed");
    let per_query: u64 = body
        .lines()
        .filter(|line| line.starts_with("spectre_engine_query_events_processed{"))
        .map(|line| {
            line.rsplit_once(' ')
                .expect("labelled metric value")
                .1
                .parse::<u64>()
                .expect("metric value")
        })
        .sum();
    assert_eq!(
        per_query, aggregate,
        "per-query events_processed must sum to the aggregate"
    );

    let outcome = handle.join().expect("join");
    assert_eq!(outcome.report.metrics.events_processed, aggregate);
    assert_eq!(outcome.report.input_events, 2_000);
    assert!(outcome.summary_json.contains("\"input_events\":2000"));
}
