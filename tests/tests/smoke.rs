//! Deterministic end-to-end smoke test: the speculative simulation runtime
//! must reproduce the sequential reference output exactly on a small seeded
//! NYSE stream, for several instance counts. This is the fastest full pass
//! through ingestion → windowing → matching → speculation → output, and the
//! first test to look at when the engine regresses wholesale.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_integration::assert_sim_matches_sequential;
use spectre_query::queries::{self, Direction};

#[test]
fn sim_matches_sequential_on_small_nyse() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2_000, 42), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 4, 120, Direction::Rising));

    // The reference output must be non-trivial, otherwise the equality
    // below would pass vacuously on an engine that drops everything.
    let expected = run_sequential(&query, &events).complex_events;
    assert!(
        !expected.is_empty(),
        "seeded NYSE stream should produce complex events"
    );

    assert_sim_matches_sequential(&query, &events, &[1, 2, 4, 8]);
}
