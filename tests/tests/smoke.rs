//! Deterministic end-to-end smoke test: the speculative simulation runtime
//! must reproduce the sequential reference output exactly on a small seeded
//! NYSE stream, for several instance counts. This is the fastest full pass
//! through ingestion → windowing → matching → speculation → output, and the
//! first test to look at when the engine regresses wholesale.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{run_simulated, SpectreConfig};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::Schema;
use spectre_integration::{assert_same_output, assert_sim_matches_sequential};
use spectre_query::queries::{self, Direction};

#[test]
fn sim_matches_sequential_on_small_nyse() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2_000, 42), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 4, 120, Direction::Rising));

    // The reference output must be non-trivial, otherwise the equality
    // below would pass vacuously on an engine that drops everything.
    let expected = run_sequential(&query, &events).complex_events;
    assert!(
        !expected.is_empty(),
        "seeded NYSE stream should produce complex events"
    );

    assert_sim_matches_sequential(&query, &events, &[1, 2, 4, 8]);
}

#[test]
fn sim_matches_sequential_across_batch_sizes_shard_counts_and_lazy_modes() {
    // The batched splitter hand-off, the sharded window store and the lazy
    // dependency tree are pure mechanics: k ∈ {1,2,4,8} × batch ∈
    // {1,64,1024} × shards ∈ {1,8} × lazy ∈ {on,off} all reproduce the
    // sequential reference exactly (batch 1 / shards 1 / lazy off is the
    // original event-at-a-time, single-lock, eager-copy engine).
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2_000, 42), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 4, 120, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;
    assert!(!expected.is_empty());

    for lazy in [true, false] {
        for k in [1usize, 2, 4, 8] {
            for batch in [1usize, 64, 1024] {
                for shards in [1usize, 8] {
                    let config = SpectreConfig::with_batching(k, batch, shards)
                        .with_lazy_materialization(lazy);
                    let report = run_simulated(&query, events.clone(), &config);
                    assert_same_output(
                        &format!("sim k={k} batch={batch} shards={shards} lazy={lazy}"),
                        &report.complex_events,
                        &expected,
                    );
                }
            }
        }
    }
}

#[test]
fn lazy_tree_clones_only_scheduled_branches() {
    // The O(1)-creation claim, observed end to end on an
    // abandonment-dominant workload (q/ws = 0.5, the paper's high-ratio
    // regime where most partial matches fail): the lazy engine clones
    // strictly less than the eager engine copies and accounts every
    // skipped clone in `lazy_versions_dropped`.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2_000, 42), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 60, 120, Direction::Rising));

    // k = 1: only the root is ever scheduled, so no branch materializes
    // through scheduling — abandoned groups drop their thunks for free and
    // only completed groups force a clone. This is where the O(1) claim
    // is sharpest. Window attach is pinned eager on both sides so the
    // version accounting isolates the branch machinery.
    let lazy = run_simulated(
        &query,
        events.clone(),
        &SpectreConfig::with_instances(1).with_lazy_attach(false),
    );
    let eager = run_simulated(
        &query,
        events,
        &SpectreConfig::with_instances(1)
            .with_lazy_materialization(false)
            .with_lazy_attach(false),
    );
    assert_eq!(lazy.complex_events, eager.complex_events);

    let lm = &lazy.metrics;
    let em = &eager.metrics;
    assert_eq!(em.versions_materialized, 0, "eager mode never defers");
    assert_eq!(em.lazy_versions_dropped, 0);
    assert!(
        lm.lazy_versions_dropped > 0,
        "abandoned groups must drop their unscheduled branches for free"
    );
    assert!(
        lm.versions_created < em.versions_created,
        "lazy created {} versions, eager {} — deferral must shrink cloning",
        lm.versions_created,
        em.versions_created
    );
    assert!(
        lm.versions_materialized <= lm.versions_created,
        "materializations are a subset of creations"
    );
}

#[test]
fn sim_matches_sequential_across_lazy_attach_modes() {
    // The attach-thunk rows of the equivalence matrix: lazy window attach
    // (pending-attach markers materialized on schedule) × lazy completion
    // branches × k all reproduce the sequential reference exactly — the
    // deferral is pure mechanics.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2_000, 42), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 4, 120, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;
    assert!(!expected.is_empty());

    for attach in [true, false] {
        for lazy in [true, false] {
            for k in [1usize, 2, 4, 8] {
                let config = SpectreConfig::with_instances(k)
                    .with_lazy_materialization(lazy)
                    .with_lazy_attach(attach);
                let report = run_simulated(&query, events.clone(), &config);
                assert_same_output(
                    &format!("sim k={k} lazy={lazy} attach={attach}"),
                    &report.complex_events,
                    &expected,
                );
            }
        }
    }
}

#[test]
fn lazy_attach_creates_fewer_versions_than_eager_attach() {
    // The attach-thunk win, observed end to end: at low k most lineages
    // are never scheduled, so deferring the per-leaf fresh versions must
    // shrink version creation at identical output.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(2_000, 42), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 60, 120, Direction::Rising));

    let deferred = run_simulated(&query, events.clone(), &SpectreConfig::with_instances(1));
    let eager = run_simulated(
        &query,
        events,
        &SpectreConfig::with_instances(1).with_lazy_attach(false),
    );
    assert_eq!(deferred.complex_events, eager.complex_events);
    assert!(
        deferred.metrics.versions_created < eager.metrics.versions_created,
        "lazy attach created {} versions, eager attach {}",
        deferred.metrics.versions_created,
        eager.metrics.versions_created
    );
}

#[test]
fn splitter_feeds_identical_event_runs_for_every_batch_size() {
    // Beyond output equality: the per-window event sequences the splitter
    // hands to the instances are byte-identical for every batch size, so
    // a processed-events metric over a consumption-free query (nothing
    // suppressed, no speculation) must agree exactly with the stream.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1_500, 7), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 100, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;

    let mut baseline: Option<Vec<String>> = None;
    for batch in [1usize, 7, 64, 1024] {
        let config = SpectreConfig::with_batching(2, batch, 8);
        let report = run_simulated(&query, events.clone(), &config);
        assert_same_output(&format!("batch={batch}"), &report.complex_events, &expected);
        let rendered = spectre_integration::fmt_all(&report.complex_events);
        match &baseline {
            None => baseline = Some(rendered),
            Some(b) => assert_eq!(&rendered, b, "batch={batch} diverged from batch=1"),
        }
    }
}
