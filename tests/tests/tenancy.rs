//! Tenant-aware sessions: tagging every query with the same tenant must
//! change nothing — outputs *and* schedules bit-identical to the
//! untenanted engine across the k × batch × lazy matrix — while
//! pattern-derived ingestion filters skip windows a query cannot match in
//! without altering its output, quota violations surface as typed builder
//! errors instead of panics, and per-tenant metric rollups sum exactly to
//! the aggregate counters (including across a mid-stream retire).

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{
    EngineError, QueryId, Report, SpectreConfig, SpectreEngine, TenantId, TenantQuota,
};
use spectre_datasets::{NyseConfig, NyseGenerator};
use spectre_events::{Event, Schema};
use spectre_integration::{assert_same_output, mini};
use spectre_query::queries::{self, Direction};
use spectre_query::{ComplexEvent, ConsumptionPolicy, Expr, Pattern, Query, WindowSpec};

fn nyse_fixture(events: usize, seed: u64) -> (Arc<Query>, Vec<Event>) {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(events, seed), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    (query, events)
}

fn query_outputs(report: &Report, qid: QueryId) -> &[ComplexEvent] {
    &report
        .queries
        .get(&qid)
        .unwrap_or_else(|| panic!("{qid} missing from report"))
        .complex_events
}

/// A mini-vocabulary A-then-B query whose derived filter rejects every
/// event with `x ∉ {1, 2}` — windows made of rejected events are skipped.
fn ab_query() -> (mini::MiniVocab, Arc<Query>) {
    let mut schema = Schema::new();
    let v = mini::vocab(&mut schema);
    let query = Arc::new(
        Query::builder("ab")
            .pattern(
                Pattern::builder()
                    .one("A", Expr::current(v.x).eq_(Expr::value(1.0)))
                    .one("B", Expr::current(v.x).eq_(Expr::value(2.0)))
                    .build()
                    .unwrap(),
            )
            .window(WindowSpec::count_sliding(4, 2).unwrap())
            .consumption(ConsumptionPolicy::All)
            .build()
            .unwrap(),
    );
    (v, query)
}

#[test]
fn single_tenant_sessions_match_untenanted_bit_for_bit() {
    // Tagging the only query with a non-default tenant must reduce exactly
    // to the untenanted engine: same outputs AND the same schedule, which
    // the deterministic simulation exposes as an identical metrics
    // snapshot (versions materialized, rollbacks, predictor refreshes —
    // any scheduling divergence would shift at least one counter).
    let (query, events) = nyse_fixture(1_200, 19);
    let expected = run_sequential(&query, &events).complex_events;
    assert!(!expected.is_empty());
    for lazy in [true, false] {
        for k in [1usize, 2, 4] {
            for batch in [1usize, 64] {
                let config =
                    SpectreConfig::with_batching(k, batch, 8).with_lazy_materialization(lazy);
                let plain = {
                    let mut b = SpectreEngine::multi_builder().config(config.clone());
                    let qid = b.add_query(&query);
                    (b.build().run(events.clone()), qid)
                };
                let tagged = {
                    let mut b = SpectreEngine::multi_builder().config(config);
                    let qid = b.add_query_for(TenantId(5), &query);
                    (b.build().run(events.clone()), qid)
                };
                let tag = format!("sim k={k} batch={batch} lazy={lazy}");
                assert_same_output(&tag, query_outputs(&plain.0, plain.1), &expected);
                assert_same_output(&tag, query_outputs(&tagged.0, tagged.1), &expected);
                assert_eq!(
                    plain.0.metrics, tagged.0.metrics,
                    "{tag}: tenant tagging must not perturb the schedule"
                );
                // The single tenant's rollup IS its only query's share
                // (engine-scoped counters like sched_cycles stay out of
                // rollups by design).
                assert_eq!(tagged.0.tenants.len(), 1);
                assert_eq!(
                    tagged.0.tenants[&TenantId(5)],
                    tagged.0.queries[&tagged.1].metrics
                );
            }
        }
    }
}

#[test]
fn threaded_single_tenant_matches_untenanted_outputs() {
    let (query, events) = nyse_fixture(1_200, 41);
    let expected = run_sequential(&query, &events).complex_events;
    assert!(!expected.is_empty());
    let config = SpectreConfig::with_instances(2);
    let mut b = SpectreEngine::multi_builder().config(config);
    let qid = b.add_query_for(TenantId(9), &query);
    let report = b.threaded().build().run(events);
    assert_same_output("threaded tagged", query_outputs(&report, qid), &expected);
    assert_eq!(report.queries[&qid].tenant, TenantId(9));
}

#[test]
fn filters_skip_irrelevant_windows_without_changing_output() {
    // Long stretches of x=7 noise open windows containing nothing the A-B
    // query can bind: with the pattern-derived prefilter those windows are
    // never attached to the dependency tree (windows_skipped counts them),
    // and the output still matches the filter-free sequential reference.
    let (v, query) = ab_query();
    let mut xs = Vec::new();
    for block in 0..40 {
        if block % 4 == 0 {
            xs.extend_from_slice(&[1.0, 7.0, 2.0, 7.0]);
        } else {
            xs.extend_from_slice(&[7.0, 7.0, 7.0, 7.0]);
        }
    }
    let events = mini::stream(v, &xs);
    let expected = run_sequential(&query, &events).complex_events;
    assert!(!expected.is_empty());
    for threaded in [false, true] {
        let mut b = SpectreEngine::multi_builder().config(SpectreConfig::with_instances(2));
        let qid = b.add_query(&query);
        let engine = if threaded {
            b.threaded().build()
        } else {
            b.build()
        };
        let report = engine.run(events.clone());
        let tag = if threaded { "threaded" } else { "sim" };
        assert_same_output(tag, query_outputs(&report, qid), &expected);
        assert!(
            report.metrics.windows_skipped > 0,
            "{tag}: the all-noise windows must be skipped, not attached"
        );
        assert_eq!(
            report.queries[&qid].metrics.windows_skipped, report.metrics.windows_skipped,
            "{tag}: the only query owns every skip"
        );
        // A skipped window never reaches the tree, so it is not retired;
        // the windows with relevant events still are.
        assert!(
            report.metrics.windows_retired > 0,
            "{tag}: windows with relevant events are processed normally"
        );
    }
}

#[test]
fn quota_violations_surface_as_builder_errors() {
    let (query, _) = nyse_fixture(16, 3);

    // An invalid engine knob is a typed error, not a panic.
    let mut b = SpectreEngine::multi_builder().config(SpectreConfig {
        instances: 0,
        ..SpectreConfig::with_instances(2)
    });
    b.add_query(&query);
    match b.try_build() {
        Err(EngineError::InvalidConfig(msg)) => {
            assert!(msg.contains("at least one operator instance"), "{msg}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }

    // So is an invalid tenant quota.
    let mut b = SpectreEngine::multi_builder().config(SpectreConfig::with_instances(2));
    b.add_query_for(TenantId(1), &query);
    b.set_quota(TenantId(1), TenantQuota::default().with_weight(0));
    match b.try_build() {
        Err(EngineError::InvalidConfig(msg)) => {
            assert!(msg.contains("tenant weight must be positive"), "{msg}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }

    // A speculation cap above the engine-wide ceiling is rejected too.
    let config = SpectreConfig::with_instances(2);
    let too_high = config.max_tree_versions + 1;
    let mut b = SpectreEngine::multi_builder().config(config);
    b.add_query_for(TenantId(1), &query);
    b.set_quota(
        TenantId(1),
        TenantQuota::default().with_max_versions(too_high),
    );
    match b.try_build() {
        Err(EngineError::InvalidConfig(msg)) => {
            assert!(msg.contains("exceeds max_tree_versions"), "{msg}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }

    // Overrunning a tenant's query cap at build time names the tenant.
    let mut b = SpectreEngine::multi_builder().config(SpectreConfig::with_instances(2));
    b.add_query_for(TenantId(2), &query);
    b.add_query_for(TenantId(2), &query);
    b.set_quota(TenantId(2), TenantQuota::default().with_max_queries(1));
    match b.try_build() {
        Err(EngineError::QuotaExceeded {
            tenant,
            max_queries,
        }) => {
            assert_eq!(tenant, TenantId(2));
            assert_eq!(max_queries, 1);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
}

#[test]
fn live_deploys_respect_the_query_quota() {
    let (query, events) = nyse_fixture(600, 11);
    let mut b = SpectreEngine::multi_builder().config(SpectreConfig::with_instances(2));
    let first = b.add_query_for(TenantId(3), &query);
    b.set_quota(TenantId(3), TenantQuota::default().with_max_queries(2));
    let mut engine = b.try_build().expect("one query is under the cap");
    engine.push_batch(events[..300].to_vec());
    // Second deploy fills the quota; the third is rejected mid-stream and
    // leaves the session fully operational.
    let second = engine
        .deploy_query_for(TenantId(3), &query)
        .expect("second deploy fills the quota");
    match engine.deploy_query_for(TenantId(3), &query) {
        Err(EngineError::QuotaExceeded { tenant, .. }) => assert_eq!(tenant, TenantId(3)),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // A different tenant is unaffected by t3's cap.
    let other = engine
        .deploy_query_for(TenantId(4), &query)
        .expect("other tenants have their own caps");
    engine.push_batch(events[300..].to_vec());
    let report = engine.try_finish().expect("finish");
    for qid in [first, second, other] {
        assert!(report.queries.contains_key(&qid));
    }
    assert_eq!(report.queries[&first].tenant, TenantId(3));
    assert_eq!(report.queries[&other].tenant, TenantId(4));
}

#[test]
#[should_panic(expected = "tenant weight must be positive")]
fn infallible_build_panics_with_the_validation_message() {
    let (query, _) = nyse_fixture(16, 5);
    let mut b = SpectreEngine::multi_builder().config(SpectreConfig::with_instances(2));
    b.add_query_for(TenantId(1), &query);
    b.set_quota(TenantId(1), TenantQuota::default().with_weight(0));
    b.build();
}

#[test]
fn tenant_rollups_sum_to_the_aggregate() {
    // Two tenants with different weights and a mid-stream retire: every
    // logically-per-query counter must decompose exactly across the
    // per-tenant rollups — the retired query's share is folded into its
    // tenant's residual, nothing double-counted, nothing lost.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1_200, 53), &mut schema).collect();
    let a = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let b = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));

    let mut builder = SpectreEngine::multi_builder().config(SpectreConfig::with_instances(3));
    builder.add_query_for(TenantId(1), &a);
    let retired = builder.add_query_for(TenantId(1), &a);
    builder.add_query_for(TenantId(2), &b);
    builder.set_quota(TenantId(1), TenantQuota::default().with_weight(3));
    let mut engine = builder.try_build().expect("build");
    engine.push_batch(events[..600].to_vec());
    engine.retire_query(retired).expect("retire mid-stream");
    engine.push_batch(events[600..].to_vec());
    let report = engine.try_finish().expect("finish");

    assert_eq!(report.tenants.len(), 2, "both tenants report a rollup");
    let total = report.metrics;
    macro_rules! assert_decomposes {
        ($($field:ident),+ $(,)?) => {$(
            let sum: u64 = report.tenants.values().map(|t| t.$field).sum();
            assert_eq!(
                total.$field, sum,
                concat!(stringify!($field), " must equal the sum of tenant rollups"),
            );
        )+};
    }
    assert_decomposes!(
        events_processed,
        events_suppressed,
        cgs_created,
        cgs_completed,
        cgs_abandoned,
        versions_created,
        versions_dropped,
        versions_materialized,
        lazy_versions_dropped,
        predictor_refreshes,
        predictor_refresh_nanos,
        rollbacks,
        windows_retired,
        windows_skipped,
        checkpoints_taken,
        checkpoint_restores,
        outputs_emitted,
        events_reordered,
        late_events_dropped,
        late_events_admitted,
        watermarks_advanced,
    );
    assert!(total.outputs_emitted > 0, "the run produced outputs");
    // The live session exposes the same rollups before finish().
    let mut engine = SpectreEngine::multi_builder()
        .config(SpectreConfig::with_instances(2))
        .build();
    engine.deploy_query_for(TenantId(7), &a).expect("deploy");
    engine.push_batch(events[..200].to_vec());
    let live = engine.tenant_metrics();
    assert_eq!(live.len(), 1);
    assert_eq!(live[0].0, TenantId(7));
}

#[test]
fn weighted_tenants_still_produce_exact_outputs() {
    // Fair-share scheduling reorders *speculation*, never *semantics*:
    // whatever the weights, every hosted query's output stays bit-identical
    // to its solo sequential run.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1_200, 61), &mut schema).collect();
    let a = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let b = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
    let expected_a = run_sequential(&a, &events).complex_events;
    let expected_b = run_sequential(&b, &events).complex_events;
    assert!(!expected_a.is_empty() && !expected_b.is_empty());
    for threaded in [false, true] {
        let mut builder = SpectreEngine::multi_builder().config(SpectreConfig::with_instances(2));
        let qa = builder.add_query_for(TenantId(1), &a);
        let qb = builder.add_query_for(TenantId(2), &b);
        builder.set_quota(TenantId(1), TenantQuota::default().with_weight(4));
        builder.set_quota(TenantId(2), TenantQuota::default().with_max_versions(64));
        let engine = if threaded {
            builder.threaded().build()
        } else {
            builder.build()
        };
        let report = engine.run(events.clone());
        let tag = if threaded { "threaded" } else { "sim" };
        assert_same_output(&format!("{tag} a"), query_outputs(&report, qa), &expected_a);
        assert_same_output(&format!("{tag} b"), query_outputs(&report, qb), &expected_b);
    }
}
