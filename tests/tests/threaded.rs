//! Threaded-runtime integration: real OS threads (1 splitter + k operator
//! instances over shared memory) must deliver the sequential output under
//! arbitrary interleavings. Streams are kept small — this suite also runs on
//! single-core machines where the threads time-slice.

use std::sync::Arc;

use spectre_baselines::run_sequential;
use spectre_core::{run_threaded, SpectreConfig, SpectreEngine};
use spectre_datasets::{NyseConfig, NyseGenerator, RandConfig, RandGenerator};
use spectre_events::Schema;
use spectre_integration::assert_same_output;
use spectre_query::queries::{self, Direction};

#[test]
fn threaded_q1_matches_sequential() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1000, 61), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;
    for k in [1usize, 2, 3] {
        let report = run_threaded(&query, events.clone(), &SpectreConfig::with_instances(k));
        assert_same_output(
            &format!("threaded q1 k={k}"),
            &report.complex_events,
            &expected,
        );
        assert_eq!(report.input_events, 1000);
    }
}

#[test]
fn threaded_q3_matches_sequential() {
    let mut schema = Schema::new();
    let gen = RandGenerator::new(RandConfig::small(800, 67), &mut schema);
    let symbols = gen.symbols().to_vec();
    let events: Vec<_> = gen.collect();
    let query = Arc::new(queries::q3(
        &mut schema,
        symbols[0],
        &symbols[1..4],
        200,
        40,
    ));
    let expected = run_sequential(&query, &events).complex_events;
    let report = run_threaded(&query, events, &SpectreConfig::with_instances(2));
    assert_same_output("threaded q3", &report.complex_events, &expected);
}

#[test]
fn threaded_repeated_runs_are_deterministic_in_output() {
    // Thread schedules differ between runs; outputs must not.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(700, 71), &mut schema).collect();
    let query = Arc::new(queries::q2(&mut schema, 60.0, 140.0, 200, 40));
    let expected = run_sequential(&query, &events).complex_events;
    for run in 0..3 {
        let report = run_threaded(&query, events.clone(), &SpectreConfig::with_instances(2));
        eprintln!("run {run}: metrics = {:?}", report.metrics);
        assert_same_output(&format!("run {run}"), &report.complex_events, &expected);
    }
}

#[test]
fn threaded_matches_sequential_across_batch_sizes_shard_counts_and_lazy_modes() {
    // Deterministic-equivalence matrix for the batched/sharded data path
    // and the lazy dependency tree under real threads: k ∈ {1,2,4,8} ×
    // batch ∈ {1,64,1024} × shards ∈ {1,8} × lazy ∈ {on,off} all deliver
    // the sequential output, on any machine and any interleaving. Lazy
    // materialization is the racier half (clones are taken from *live*
    // source state that instances mutate concurrently), which is exactly
    // why it runs under real threads here.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1000, 83), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;
    for lazy in [true, false] {
        for k in [1usize, 2, 4, 8] {
            for batch in [1usize, 64, 1024] {
                for shards in [1usize, 8] {
                    let config = SpectreConfig::with_batching(k, batch, shards)
                        .with_lazy_materialization(lazy);
                    let report = run_threaded(&query, events.clone(), &config);
                    assert_same_output(
                        &format!("threaded k={k} batch={batch} shards={shards} lazy={lazy}"),
                        &report.complex_events,
                        &expected,
                    );
                }
            }
        }
    }
}

#[test]
fn threaded_matches_sequential_across_lazy_attach_modes() {
    // Attach-thunk rows under real threads: pending-attach markers
    // materialize while instances concurrently mutate the live source
    // state the fresh versions will read — any interleaving must still
    // deliver the sequential output, with either branch mode.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1000, 83), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;
    for attach in [true, false] {
        for lazy in [true, false] {
            for k in [1usize, 2, 4, 8] {
                let config = SpectreConfig::with_instances(k)
                    .with_lazy_materialization(lazy)
                    .with_lazy_attach(attach);
                let report = run_threaded(&query, events.clone(), &config);
                assert_same_output(
                    &format!("threaded k={k} lazy={lazy} attach={attach}"),
                    &report.complex_events,
                    &expected,
                );
            }
        }
    }
}

#[test]
fn threaded_aggregate_metrics_equal_the_sum_of_per_worker_blocks() {
    // Each instance owns a cache-padded counter block for the hot metrics
    // (events processed/suppressed, idle and stalled steps) so k workers
    // never contend on one cache line. The decomposition must stay exact
    // at every instance count: instances route every increment through
    // their own block, so the aggregate snapshot — base residual plus the
    // block sums — equals the plain block sums here, and the per-query
    // share of a single-query session equals the aggregate. Runs under
    // real threads, where a lost or double-counted increment would be a
    // race, not an arithmetic slip.
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(1000, 83), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 3, 150, Direction::Rising));
    let expected = run_sequential(&query, &events).complex_events;
    for lazy in [true, false] {
        for k in [1usize, 2, 4, 8] {
            let config = SpectreConfig::with_batching(k, 64, 8).with_lazy_materialization(lazy);
            let mut engine = SpectreEngine::builder(&query)
                .config(config)
                .threaded()
                .build();
            engine.ingest(events.iter().cloned());
            let report = engine.try_finish().expect("fresh session finishes once");
            assert_same_output(
                &format!("engine k={k} lazy={lazy}"),
                &report.complex_events,
                &expected,
            );
            // Workers are joined after finish, so the block snapshots are
            // final and race-free.
            let workers = engine.worker_metrics();
            assert_eq!(workers.len(), k, "one counter block per instance");
            let m = &report.metrics;
            let sums = workers.iter().fold([0u64; 4], |acc, w| {
                [
                    acc[0] + w.events_processed,
                    acc[1] + w.events_suppressed,
                    acc[2] + w.idle_steps,
                    acc[3] + w.stalled_steps,
                ]
            });
            let label = format!("k={k} lazy={lazy}");
            assert_eq!(sums[0], m.events_processed, "events_processed {label}");
            assert_eq!(sums[1], m.events_suppressed, "events_suppressed {label}");
            assert_eq!(sums[2], m.idle_steps, "idle_steps {label}");
            assert_eq!(sums[3], m.stalled_steps, "stalled_steps {label}");
            assert!(m.events_processed >= events.len() as u64);
            // Single-query session: the query's share of the summable hot
            // counters is the whole aggregate.
            let (_, qm) = report
                .queries
                .iter()
                .map(|(qid, qr)| (*qid, &qr.metrics))
                .next()
                .expect("one deployed query");
            assert_eq!(qm.events_processed, m.events_processed, "{label}");
            assert_eq!(qm.events_suppressed, m.events_suppressed, "{label}");
        }
    }
}

#[test]
fn threaded_reports_plausible_metrics() {
    let mut schema = Schema::new();
    let events: Vec<_> = NyseGenerator::new(NyseConfig::small(500, 73), &mut schema).collect();
    let query = Arc::new(queries::q1(&mut schema, 2, 100, Direction::Rising));
    let report = run_threaded(&query, events, &SpectreConfig::with_instances(2));
    let m = &report.metrics;
    assert!(
        m.events_processed >= 500,
        "each event processed at least once"
    );
    assert!(m.windows_retired > 0);
    assert!(m.sched_cycles > 0);
    assert!(report.throughput() > 0.0);
}
